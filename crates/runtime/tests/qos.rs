//! Integration tests of the adaptive QoS loop.
//!
//! The headline proof is the seeded virtual-time overload scenario
//! ([`asv_runtime::run_overload_sim`], run by CI in both feature configs):
//! with QoS enabled every over-capacity session settles inside its SLO and
//! recovers to full quality after the load drops; with QoS disabled the
//! identical workload shows p95 tail collapse.  The remaining tests drive
//! the *real* scheduler: an aggressive SLO actuates a live session's knobs,
//! and a proptest pins that a session whose controller never actuates stays
//! byte-identical to batch processing.

use asv::ism::{IsmConfig, IsmPipeline};
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_runtime::{
    parse_scrape, run_overload_sim, CostMetric, OverloadConfig, QosAction, QosConfig, Scheduler,
    SchedulerConfig, SessionSlo,
};
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::BlockMatchParams;
use proptest::prelude::*;

const WIDTH: usize = 48;
const HEIGHT: usize = 36;

fn pipeline(window: usize) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: window,
        refine: BlockMatchParams {
            max_disparity: 24,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 24,
            occlusion_handling: true,
            metric: CostMetric::Sad,
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(HEIGHT, WIDTH), config.surrogate),
    )
}

fn sequence(seed: u64, frames: usize) -> StereoSequence {
    StereoSequence::generate(
        &SceneConfig::scene_flow_like(WIDTH, HEIGHT)
            .with_seed(seed)
            .with_objects(2),
        frames,
    )
}

/// The CI acceptance scenario, QoS on: every over-capacity session degrades,
/// meets its SLO in the steady half of the overload phase, and walks back to
/// full quality once the load drops.
#[test]
fn overload_sim_with_qos_meets_slo_and_recovers() {
    let config = OverloadConfig::ci();
    let report = run_overload_sim(&config, true);
    assert!(report.qos_enabled);
    assert_eq!(report.sessions.len(), config.sessions);
    for session in &report.sessions {
        assert!(
            session.overload_p95_us <= config.slo.target_p95_step_us,
            "{}: steady-state overload p95 {}us exceeds the {}us SLO",
            session.key,
            session.overload_p95_us,
            config.slo.target_p95_step_us
        );
        assert!(
            session.max_level > 0,
            "{}: controller never degraded under 2x overload",
            session.key
        );
        assert_eq!(
            session.final_level, 0,
            "{}: did not recover to full quality after the load dropped",
            session.key
        );
        assert!(
            session.relaxed_p95_us <= config.slo.target_p95_step_us,
            "{}: relaxed-phase p95 {}us exceeds the SLO",
            session.key,
            session.relaxed_p95_us
        );
        assert!(
            session.slo_violations > 0,
            "{}: no violations sensed",
            session.key
        );
        assert!(session.actuations > 0, "{}: no actuations", session.key);
    }
    // The ladder was walked downward (every degrade action fired) and back
    // up (recoveries at least match the net return to level 0).
    for action in [
        QosAction::CensusMetric,
        QosAction::WidenWindow,
        QosAction::RelaxMotion,
    ] {
        assert!(
            report.total_actuations[action.index()] > 0,
            "action {} never fired",
            action.name()
        );
    }
    assert!(report.total_actuations[QosAction::Recover.index()] >= 3 * config.sessions as u64);
}

/// The CI acceptance scenario, QoS off: the identical workload collapses the
/// tail — p95 blows through several multiples of the (unenforced) SLO.
#[test]
fn overload_sim_without_qos_collapses_the_tail() {
    let config = OverloadConfig::ci();
    let report = run_overload_sim(&config, false);
    assert!(!report.qos_enabled);
    for session in &report.sessions {
        assert!(
            session.overload_p95_us > 4 * config.slo.target_p95_step_us,
            "{}: expected tail collapse without QoS, got p95 {}us (SLO {}us)",
            session.key,
            session.overload_p95_us,
            config.slo.target_p95_step_us
        );
        assert_eq!(session.max_level, 0);
        assert_eq!(session.actuations, 0);
        assert_eq!(session.slo_violations, 0);
    }
    assert_eq!(report.total_actuations, [0; QosAction::COUNT]);
}

/// The sim is virtual-time and seeded: two runs are identical, so the CI
/// assertions above can never flake.
#[test]
fn overload_sim_is_deterministic() {
    let config = OverloadConfig::ci();
    for enabled in [true, false] {
        let a = run_overload_sim(&config, enabled);
        let b = run_overload_sim(&config, enabled);
        assert_eq!(a.total_actuations, b.total_actuations);
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.overload_p95_us, y.overload_p95_us);
            assert_eq!(x.relaxed_p95_us, y.relaxed_p95_us);
            assert_eq!(x.max_level, y.max_level);
            assert_eq!(x.slo_violations, y.slo_violations);
        }
    }
}

/// Against the real scheduler: an SLO no real frame can meet forces the
/// controller to actuate a live session's ISM knobs, and the degradation
/// shows up in the report's telemetry and the Prometheus scrape.
#[test]
fn impossible_slo_actuates_a_live_session() {
    let pipe = pipeline(2);
    let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(1));
    // 1 µs p95 target: every frame violates; a tiny window + streaks make
    // the controller react within the stream.
    let qos = QosConfig::new(SessionSlo::p95_step_us(1))
        .with_window(4)
        .with_streaks(1, 1_000);
    let handle = scheduler.add_session_qos(pipe.state(), Some("hot-cam".to_owned()), qos);
    let stream = sequence(71, 12);
    for frame in stream.frames() {
        handle
            .submit(frame.left.clone(), frame.right.clone())
            .expect("submit");
    }
    let report = scheduler.join();
    let session = &report.sessions[0];
    assert!(session.telemetry.qos.enabled);
    assert!(
        session.telemetry.qos.level > 0,
        "controller never degraded under an impossible SLO"
    );
    assert!(session.telemetry.qos.slo_violations > 0);
    assert!(report.aggregate.qos_slo_violations > 0);
    assert_eq!(
        report.aggregate.qos_sessions.len(),
        1,
        "one SLO-managed session must export a level gauge"
    );
    assert_eq!(report.aggregate.qos_sessions[0].session, "hot-cam");

    let text = asv_runtime::render_prometheus(std::slice::from_ref(&report.aggregate));
    let samples = parse_scrape(&text).expect("scrape parses");
    let level = samples
        .iter()
        .find(|s| s.name == "asv_qos_level" && s.label("session") == Some("hot-cam"))
        .expect("per-session qos level gauge");
    assert!(level.value >= 1.0);
    assert!(samples
        .iter()
        .any(|s| s.name == "asv_qos_slo_violations_total" && s.value >= 1.0));
    assert!(samples.iter().any(|s| s.name == "asv_qos_actuations_total"
        && s.label("action") == Some("census_metric")
        && s.value >= 1.0));
}

/// A generous SLO never actuates, and `ASV_QOS`-less registration leaves the
/// stream's output byte-identical to batch processing — QoS is free until it
/// fires.
#[test]
fn generous_slo_never_actuates_and_output_matches_batch() {
    let pipe = pipeline(2);
    let stream = sequence(77, 6);
    let batch = pipe.process_sequence(&stream).expect("batch baseline");

    let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(1));
    let qos = QosConfig::new(SessionSlo::p95_step_us(u64::MAX / 2));
    let handle = scheduler.add_session_qos(pipe.state(), Some("calm-cam".to_owned()), qos);
    for frame in stream.frames() {
        handle
            .submit(frame.left.clone(), frame.right.clone())
            .expect("submit");
    }
    let report = scheduler.join();
    let session = &report.sessions[0];
    assert!(session.telemetry.qos.enabled);
    assert_eq!(session.telemetry.qos.level, 0);
    assert_eq!(session.telemetry.qos.actuations_total(), 0);
    assert_eq!(batch.frames.len(), session.frames.len());
    for (expected, actual) in batch.frames.iter().zip(&session.frames) {
        assert_eq!(expected.kind, actual.kind);
        assert_eq!(
            expected.disparity, actual.disparity,
            "output must stay byte-identical"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Whatever the workload seed and frame count, a controller that never
    /// actuates (generous SLO) leaves streaming output byte-identical to
    /// batch.
    #[test]
    fn qos_without_actuation_preserves_batch_identity(
        seed in 0u64..1_000,
        frames in 2usize..6,
        window in 1usize..4,
    ) {
        let pipe = pipeline(window);
        let stream = sequence(seed, frames);
        let batch = pipe.process_sequence(&stream).expect("batch baseline");

        let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(2));
        let qos = QosConfig::new(SessionSlo::p95_step_us(u64::MAX / 2));
        let handle = scheduler.add_session_qos(pipe.state(), None, qos);
        for frame in stream.frames() {
            handle
                .submit(frame.left.clone(), frame.right.clone())
                .expect("submit");
        }
        let report = scheduler.join();
        let session = &report.sessions[0];
        prop_assert_eq!(session.telemetry.qos.actuations_total(), 0);
        prop_assert_eq!(batch.frames.len(), session.frames.len());
        for (expected, actual) in batch.frames.iter().zip(&session.frames) {
            prop_assert_eq!(&expected.disparity, &actual.disparity);
        }
    }
}
