//! TCP transport integration tests: real sockets on the loopback
//! interface, end-to-end through the wire format, sequence gate and
//! cluster.
//!
//! Locked properties:
//! * frames streamed through [`FrameClient`] → [`FrameServer`] → a
//!   [`Supervisor`]-fronted cluster produce output byte-identical to
//!   batch `process_sequence`;
//! * a half-written frame on disconnect is discarded whole — counted as
//!   `truncated`, never delivered, and the next session on a fresh
//!   connection is unaffected;
//! * a sender that reconnects and retransmits is deduplicated by the
//!   server's [`SequenceGate`]: at-least-once in flight, exactly-once
//!   delivered;
//! * the client's backoff loop rides out a server that is slow to appear,
//!   and surfaces a structured [`AsvError::Transport`] once the retry
//!   budget is spent on a dead endpoint;
//! * a restarted producer (all client-side sequence state lost) resumes at
//!   the server's expected sequence via the hello handshake — its frames
//!   are delivered, never silently acknowledged as duplicates;
//! * a frame the sink rejects is not committed by the sequence gate: the
//!   client retransmits it until it is delivered exactly once.

use asv::ism::{IsmConfig, IsmPipeline};
use asv::AsvError;
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_image::Image;
use asv_runtime::sim::{generate_streams, session_key, SimConfig};
use asv_runtime::wire;
use asv_runtime::{
    ClientConfig, Cluster, ClusterConfig, FrameClient, FrameServer, FrameSink, NetConfig,
    SchedulerConfig, ShedPolicy, Supervisor, TransportCounters, TransportErrorKind,
};
use asv_stereo::block_matching::BlockMatchParams;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn pipeline(width: usize, height: usize) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: 3,
        refine: BlockMatchParams {
            max_disparity: 16,
            refine_radius: 2,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 16,
            occlusion_handling: true,
            ..Default::default()
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(height, width), config.surrogate),
    )
}

/// A sink that records deliveries: enough to observe the server's
/// accept/discard/dedup decisions without running the stereo pipeline.
#[derive(Debug, Default)]
struct RecordingSink {
    frames: Mutex<Vec<(String, u64)>>,
}

impl RecordingSink {
    fn delivered(&self) -> Vec<(String, u64)> {
        self.frames
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl FrameSink for RecordingSink {
    fn deliver(&self, key: &str, seq: u64, _left: Image, _right: Image) -> Result<(), AsvError> {
        self.frames
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((key.to_owned(), seq));
        Ok(())
    }
}

/// Spins until `probe` holds or the deadline passes (server threads act
/// asynchronously to the test).
fn wait_for(mut probe: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn encoded(key: &str, seq: u64, width: usize, height: usize) -> Vec<u8> {
    let left = Image::zeros(width, height);
    let right = Image::zeros(width, height);
    let mut out = Vec::new();
    wire::encode_frame_into(&mut out, key, seq, &left, &right).expect("valid frame encodes");
    out
}

/// Reads one 10-byte ack record `[b'K', status, seq LE]`.
fn read_ack(stream: &mut TcpStream) -> (u8, u64) {
    let mut ack = [0u8; 10];
    stream.read_exact(&mut ack).expect("ack arrives");
    assert_eq!(ack[0], b'K', "ack magic");
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&ack[2..]);
    (ack[1], u64::from_le_bytes(raw))
}

/// The end-to-end determinism proof over real sockets: every session's
/// frames travel client → TCP → server → supervisor → cluster, and the
/// per-session disparity maps equal batch `process_sequence`.
#[test]
fn tcp_loopback_end_to_end_matches_batch() {
    let sim = SimConfig::small().with_sessions(2).with_frames(4);
    let pipe = pipeline(sim.width, sim.height);
    let streams = generate_streams(&sim);
    let batch: Vec<_> = streams
        .iter()
        .map(|s| pipe.process_sequence(s).unwrap())
        .collect();

    let cluster = Arc::new(Cluster::new(ClusterConfig::new(1).with_shard_config(
        SchedulerConfig {
            workers: 1,
            inbox_capacity: 2,
            shed_policy: ShedPolicy::Block,
        },
    )));
    let state_pipe = pipe.clone();
    let supervisor = Arc::new(Supervisor::new(Arc::clone(&cluster), move |_| {
        state_pipe.state()
    }));
    let server = FrameServer::serve(
        "127.0.0.1:0",
        Arc::clone(&supervisor) as Arc<dyn FrameSink>,
        cluster.transport_counters(),
        NetConfig::default(),
    )
    .expect("loopback bind");

    let mut client =
        FrameClient::connect(server.local_addr(), ClientConfig::default()).expect("connect");
    let frames = streams[0].frames().len();
    for f in 0..frames {
        for (i, stream) in streams.iter().enumerate() {
            let frame = &stream.frames()[f];
            client
                .send(&session_key(i), &frame.left, &frame.right)
                .expect("send");
        }
    }
    client.flush().expect("flush");
    assert_eq!(client.in_flight(), 0, "flush drains the window");
    drop(client);
    server.shutdown();

    let supervisor = Arc::try_unwrap(supervisor).expect("server released the sink");
    supervisor.finish();
    let outcome = Arc::try_unwrap(cluster)
        .expect("supervisor released the cluster")
        .join();
    for (i, expected) in batch.iter().enumerate() {
        let key = session_key(i);
        let session = outcome
            .session_by_key(&key)
            .unwrap_or_else(|| panic!("session {key} missing from the report"));
        assert!(
            session.error.is_none(),
            "session {key}: {:?}",
            session.error
        );
        assert_eq!(session.frames.len(), expected.frames.len(), "{key} length");
        for (f, (got, want)) in session.frames.iter().zip(&expected.frames).enumerate() {
            assert_eq!(got.kind, want.kind, "{key} frame {f} kind");
            assert_eq!(
                got.disparity, want.disparity,
                "{key} frame {f} disparity diverged from batch"
            );
        }
    }
}

/// The half-written-frame guarantee: a connection that dies mid-message
/// loses only that message — it is counted `truncated`, never delivered,
/// and a subsequent session on a fresh connection streams cleanly.
#[test]
fn half_written_frame_is_discarded_and_the_next_session_is_clean() {
    let sink = Arc::new(RecordingSink::default());
    let counters = Arc::new(TransportCounters::new());
    let server = FrameServer::serve(
        "127.0.0.1:0",
        Arc::clone(&sink) as Arc<dyn FrameSink>,
        Arc::clone(&counters),
        NetConfig {
            read_timeout: Duration::from_millis(100),
            ..NetConfig::default()
        },
    )
    .expect("loopback bind");

    // A full frame, acknowledged — then half of the next one, then death.
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    conn.write_all(&encoded("cam-a", 0, 8, 6)).expect("write");
    assert_eq!(read_ack(&mut conn), (0, 0), "frame 0 accepted");
    let partial = encoded("cam-a", 1, 8, 6);
    conn.write_all(&partial[..partial.len() / 2])
        .expect("write half");
    drop(conn);
    wait_for(
        || counters.count(TransportErrorKind::Truncated) == 1,
        "the truncated-frame counter",
    );

    // A different session over a fresh connection is untouched.
    let mut conn = TcpStream::connect(server.local_addr()).expect("reconnect");
    for seq in 0..3u64 {
        conn.write_all(&encoded("cam-b", seq, 8, 6)).expect("write");
        assert_eq!(read_ack(&mut conn), (0, seq), "cam-b frame {seq} accepted");
    }
    drop(conn);
    server.shutdown();

    let delivered = sink.delivered();
    assert_eq!(
        delivered,
        vec![
            ("cam-a".to_owned(), 0),
            ("cam-b".to_owned(), 0),
            ("cam-b".to_owned(), 1),
            ("cam-b".to_owned(), 2),
        ],
        "the half-written frame must never reach the sink"
    );
}

/// Exactly-once delivery over at-least-once retransmission: a sender that
/// reconnects and replays an already-accepted frame gets a duplicate ack
/// and the sink sees the frame once.
#[test]
fn reconnecting_sender_is_deduplicated_by_the_gate() {
    let sink = Arc::new(RecordingSink::default());
    let counters = Arc::new(TransportCounters::new());
    let server = FrameServer::serve(
        "127.0.0.1:0",
        Arc::clone(&sink) as Arc<dyn FrameSink>,
        Arc::clone(&counters),
        NetConfig::default(),
    )
    .expect("loopback bind");

    // First connection: frame 0 delivered and acked, but pretend the ack
    // was lost — the connection dies and the sender still holds the frame.
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    conn.write_all(&encoded("cam", 0, 8, 6)).expect("write");
    assert_eq!(read_ack(&mut conn), (0, 0));
    drop(conn);

    // Reconnect: retransmit frame 0 (deduplicated), then make progress.
    let mut conn = TcpStream::connect(server.local_addr()).expect("reconnect");
    conn.write_all(&encoded("cam", 0, 8, 6)).expect("rewrite");
    assert_eq!(
        read_ack(&mut conn),
        (1, 0),
        "retransmission acked as duplicate"
    );
    conn.write_all(&encoded("cam", 1, 8, 6)).expect("write");
    assert_eq!(read_ack(&mut conn), (0, 1), "next frame accepted");
    // A frame from the future is refused as a gap, not delivered.
    conn.write_all(&encoded("cam", 7, 8, 6)).expect("write");
    assert_eq!(
        read_ack(&mut conn),
        (2, 7),
        "out-of-order frame acked as gap"
    );
    drop(conn);
    server.shutdown();

    assert_eq!(
        sink.delivered(),
        vec![("cam".to_owned(), 0), ("cam".to_owned(), 1)],
        "exactly-once delivery"
    );
    assert_eq!(counters.count(TransportErrorKind::Gap), 1);
}

/// The reconnect/backoff loop in action: the client starts before the
/// server exists and succeeds once it appears.
#[test]
fn client_backoff_rides_out_a_late_server() {
    // Reserve an address, then free it so the client's first attempts fail.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = placeholder.local_addr().expect("addr");
    drop(placeholder);

    let sink = Arc::new(RecordingSink::default());
    let server_sink = Arc::clone(&sink);
    let server_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        FrameServer::serve(
            addr,
            server_sink as Arc<dyn FrameSink>,
            Arc::new(TransportCounters::new()),
            NetConfig::default(),
        )
        .expect("rebind the reserved address")
    });

    let config = ClientConfig {
        deadline: Duration::from_millis(500),
        max_retries: 20,
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(100),
        ..ClientConfig::default()
    };
    let mut client = FrameClient::connect(addr, config).expect("backoff outlasts the late server");
    assert!(
        client.counters().count(TransportErrorKind::Io)
            + client.counters().count(TransportErrorKind::Deadline)
            > 0,
        "the early attempts were counted"
    );
    let left = Image::zeros(8, 6);
    let right = Image::zeros(8, 6);
    client.send("cam", &left, &right).expect("send");
    client.flush().expect("flush");
    drop(client);
    server_thread.join().expect("server thread").shutdown();
    assert_eq!(sink.delivered(), vec![("cam".to_owned(), 0)]);
}

/// A restarted producer has no client-side sequence state, but the session
/// lives on in the server's gate.  The hello handshake must resume it at
/// the expected sequence — without it, every frame of the new incarnation
/// would be acknowledged as a duplicate and silently dropped.
#[test]
fn restarted_client_resumes_instead_of_being_silently_deduplicated() {
    let sink = Arc::new(RecordingSink::default());
    let server = FrameServer::serve(
        "127.0.0.1:0",
        Arc::clone(&sink) as Arc<dyn FrameSink>,
        Arc::new(TransportCounters::new()),
        NetConfig::default(),
    )
    .expect("loopback bind");
    let left = Image::zeros(8, 6);
    let right = Image::zeros(8, 6);

    let mut client =
        FrameClient::connect(server.local_addr(), ClientConfig::default()).expect("connect");
    for _ in 0..3 {
        client.send("cam", &left, &right).expect("send");
    }
    client.flush().expect("flush");
    drop(client); // the producer crashes: sequence state is lost

    let mut client =
        FrameClient::connect(server.local_addr(), ClientConfig::default()).expect("reconnect");
    for _ in 0..2 {
        client
            .send("cam", &left, &right)
            .expect("send after restart");
    }
    client.flush().expect("flush after restart");
    drop(client);
    server.shutdown();

    assert_eq!(
        sink.delivered(),
        (0..5)
            .map(|seq| ("cam".to_owned(), seq))
            .collect::<Vec<_>>(),
        "the restarted producer's frames must be delivered, not deduplicated"
    );
}

/// A sink that rejects the first `failures` deliveries (a saturated shard
/// under `ShedPolicy::Reject`), then accepts.
#[derive(Debug, Default)]
struct RejectingSink {
    failures: Mutex<u32>,
    frames: Mutex<Vec<(String, u64)>>,
}

impl FrameSink for RejectingSink {
    fn deliver(&self, key: &str, seq: u64, _left: Image, _right: Image) -> Result<(), AsvError> {
        let mut failures = self
            .failures
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if *failures > 0 {
            *failures -= 1;
            return Err(AsvError::transport("shard saturated"));
        }
        self.frames
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((key.to_owned(), seq));
        Ok(())
    }
}

/// Exactly-once despite sink failure: a rejected frame is not committed by
/// the gate, so the client's retransmission delivers it — once.
#[test]
fn rejected_delivery_is_retransmitted_until_delivered() {
    let sink = Arc::new(RejectingSink {
        failures: Mutex::new(1),
        frames: Mutex::new(Vec::new()),
    });
    let server = FrameServer::serve(
        "127.0.0.1:0",
        Arc::clone(&sink) as Arc<dyn FrameSink>,
        Arc::new(TransportCounters::new()),
        NetConfig::default(),
    )
    .expect("loopback bind");
    let config = ClientConfig {
        max_retries: 5,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        ..ClientConfig::default()
    };
    let mut client = FrameClient::connect(server.local_addr(), config).expect("connect");
    let left = Image::zeros(8, 6);
    let right = Image::zeros(8, 6);
    client.send("cam", &left, &right).expect("send");
    client.send("cam", &left, &right).expect("send");
    client.flush().expect("the rejected frame is retransmitted");
    drop(client);
    server.shutdown();

    let delivered = sink
        .frames
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    assert_eq!(
        delivered,
        vec![("cam".to_owned(), 0), ("cam".to_owned(), 1)],
        "the rejected frame must be delivered exactly once after retransmission"
    );
}

/// A dead endpoint exhausts the retry budget with a structured transport
/// error instead of hanging.
#[test]
fn dead_endpoint_exhausts_the_retry_budget() {
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = placeholder.local_addr().expect("addr");
    drop(placeholder);

    let config = ClientConfig {
        deadline: Duration::from_millis(200),
        max_retries: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let error = FrameClient::connect(addr, config).expect_err("nobody is listening");
    assert!(
        matches!(error, AsvError::Transport { .. }),
        "expected AsvError::Transport, got {error:?}"
    );
}
