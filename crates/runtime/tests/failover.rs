//! Fault-injection acceptance tests: the seeded chaos-transport and
//! shard-failover simulations that prove the robustness tentpole.
//!
//! Locked properties:
//! * a lossy/reordering/duplicating link with at-least-once retransmission
//!   delivers every session byte-identical to batch — no frame loss ever
//!   wedges a session, and every injected fault is counted by the
//!   transport counters;
//! * killing a shard mid-stream migrates its sessions to survivors with a
//!   key-frame re-key, and the post-re-key output is byte-identical to a
//!   fresh batch run from the migration point;
//! * both events surface in the Prometheus scrape through the
//!   `asv_sessions_migrated_total` and `asv_transport_errors_total`
//!   families.

use asv::ism::{IsmConfig, IsmPipeline};
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_runtime::{
    run_chaos_transport_sim, run_failover_sim, ChaosConfig, FailoverConfig, SimConfig,
};
use asv_stereo::block_matching::BlockMatchParams;

fn pipeline(width: usize, height: usize, window: usize) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: window,
        refine: BlockMatchParams {
            max_disparity: 16,
            refine_radius: 2,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 16,
            occlusion_handling: true,
            ..Default::default()
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(height, width), config.surrogate),
    )
}

fn ci_pipeline(sim: &SimConfig) -> IsmPipeline {
    pipeline(sim.width, sim.height, 3)
}

/// The lossy-link determinism proof: with every fault class injected at
/// aggressive rates, every session still converges byte-identical to batch
/// and every fault is visible in the transport counters.
#[test]
fn chaos_transport_delivers_byte_identical_output() {
    let sim = SimConfig::small();
    let chaos = ChaosConfig::ci();
    let report = run_chaos_transport_sim(&ci_pipeline(&sim), &sim, &chaos).unwrap();

    assert!(
        report.is_deterministic(),
        "chaos transport diverged:\n{}",
        report.mismatches.join("\n")
    );
    assert!(report.frames_compared > 0, "the comparison actually ran");
    assert_eq!(
        report.frames_delivered, report.frames_compared,
        "every delivered frame was compared"
    );
    // The ci() rates make each fault class a statistical certainty over
    // the workload; a zero here means the injector is broken.
    assert!(report.frames_dropped > 0, "drops were injected");
    assert!(report.frames_corrupted > 0, "corruptions were injected");
    assert!(report.frames_truncated > 0, "truncations were injected");
    assert!(report.frames_duplicated > 0, "duplicates were injected");
    assert!(report.frames_reordered > 0, "reorders were injected");
    assert!(report.retransmissions > 0, "losses forced retransmissions");
    assert!(
        report.transport_errors >= report.frames_corrupted + report.frames_truncated,
        "every corruption and truncation was counted ({} errors for {} + {})",
        report.transport_errors,
        report.frames_corrupted,
        report.frames_truncated
    );
}

/// The same link with a different seed: determinism is a property of the
/// protocol, not of one lucky fault schedule.
#[test]
fn chaos_transport_is_deterministic_across_fault_schedules() {
    let sim = SimConfig::small().with_sessions(2).with_frames(5);
    let pipe = ci_pipeline(&sim);
    for seed in [1u64, 0xDEAD_BEEF, 0x5EED] {
        let chaos = ChaosConfig {
            seed,
            ..ChaosConfig::ci()
        };
        let report = run_chaos_transport_sim(&pipe, &sim, &chaos).unwrap();
        assert!(
            report.is_deterministic(),
            "seed {seed:#x} diverged:\n{}",
            report.mismatches.join("\n")
        );
    }
}

/// A clean link (all rates zero) is the degenerate case: nothing dropped,
/// nothing retried, still byte-identical.
#[test]
fn clean_link_is_the_degenerate_chaos_case() {
    let sim = SimConfig::small().with_sessions(2).with_frames(4);
    let chaos = ChaosConfig {
        drop_per_mille: 0,
        corrupt_per_mille: 0,
        truncate_per_mille: 0,
        duplicate_per_mille: 0,
        reorder_per_mille: 0,
        ..ChaosConfig::ci()
    };
    let report = run_chaos_transport_sim(&ci_pipeline(&sim), &sim, &chaos).unwrap();
    assert!(report.is_deterministic());
    assert_eq!(report.frames_dropped, 0);
    assert_eq!(report.retransmissions, 0);
    assert_eq!(report.transport_errors, 0);
}

/// The shard-kill acceptance criterion: mid-stream failure migrates every
/// affected session, output is byte-identical from the re-key point, no
/// session wedges, and both new metric families appear in the scrape.
#[test]
fn shard_kill_migrates_sessions_with_byte_identical_rekey() {
    let config = FailoverConfig::ci();
    let report = run_failover_sim(&ci_pipeline(&config.sim), &config).unwrap();

    assert!(
        report.is_deterministic(),
        "failover diverged (wedged: {:?}):\n{}",
        report.wedged,
        report.mismatches.join("\n")
    );
    assert!(
        !report.migrations.is_empty(),
        "killing the shard serving session 0 must migrate at least one session"
    );
    for migration in &report.migrations {
        assert_eq!(migration.from, report.victim, "migrations leave the victim");
        assert_ne!(migration.to, report.victim, "and land on a survivor");
    }
    assert!(report.frames_compared > 0, "the comparison actually ran");

    // Every migrated session observed the kill at the configured frame.
    let migrated = report
        .migration_frame
        .iter()
        .filter_map(|f| *f)
        .collect::<Vec<_>>();
    assert!(!migrated.is_empty(), "at least one session saw the failure");
    for frame in &migrated {
        assert!(
            *frame >= config.kill_after,
            "no session can migrate before the kill (saw frame {frame})"
        );
    }

    // The scrape carries both tentpole metric families, and the migration
    // counter of the victim shard reflects the re-placements.
    assert!(
        report.scrape.contains("asv_sessions_migrated_total"),
        "scrape is missing the migration family"
    );
    assert!(
        report.scrape.contains("asv_transport_errors_total"),
        "scrape is missing the transport-error family"
    );
    let expected = format!(
        "asv_sessions_migrated_total{{shard=\"{}\"}} {}",
        report.victim,
        report.migrations.len()
    );
    assert!(
        report.scrape.contains(&expected),
        "scrape lacks `{expected}`:\n{}",
        report.scrape
    );
}

/// Killing an explicitly chosen shard also recovers, for every choice of
/// victim — placement must not bias survival.
#[test]
fn every_victim_choice_recovers() {
    let base = FailoverConfig {
        sim: SimConfig::small().with_sessions(3).with_frames(5),
        shards: 2,
        victim: None,
        kill_after: 2,
    };
    let pipe = ci_pipeline(&base.sim);
    for victim in 0..base.shards {
        let config = FailoverConfig {
            victim: Some(victim),
            ..base
        };
        let report = run_failover_sim(&pipe, &config).unwrap();
        assert_eq!(report.victim, victim);
        assert!(
            report.is_deterministic(),
            "victim {victim} diverged (wedged: {:?}):\n{}",
            report.wedged,
            report.mismatches.join("\n")
        );
    }
}
