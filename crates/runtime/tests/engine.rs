//! Integration tests of the streaming engine: batch equivalence, per-session
//! ordering, backpressure bounds, failure isolation and telemetry.

use asv::ism::{IsmConfig, IsmPipeline};
use asv::AsvError;
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_image::Image;
use asv_runtime::{serve_sequences, CostMetric, Scheduler, SchedulerConfig};
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::BlockMatchParams;

const WIDTH: usize = 48;
const HEIGHT: usize = 36;

fn pipeline(window: usize) -> IsmPipeline {
    pipeline_with_metric(window, CostMetric::Sad)
}

fn pipeline_with_metric(window: usize, metric: CostMetric) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: window,
        refine: BlockMatchParams {
            max_disparity: 24,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 24,
            occlusion_handling: true,
            metric,
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(HEIGHT, WIDTH), config.surrogate),
    )
}

fn sequence(seed: u64, frames: usize) -> StereoSequence {
    StereoSequence::generate(
        &SceneConfig::scene_flow_like(WIDTH, HEIGHT)
            .with_seed(seed)
            .with_objects(2),
        frames,
    )
}

#[test]
fn concurrent_streaming_is_byte_identical_to_batch() {
    let pipe = pipeline(2);
    let streams: Vec<StereoSequence> = (0..3).map(|i| sequence(50 + i, 5)).collect();
    let outcome = serve_sequences(
        &pipe,
        &streams,
        SchedulerConfig::per_core()
            .with_workers(3)
            .with_inbox_capacity(2),
    )
    .unwrap();
    assert_eq!(outcome.results.len(), 3);
    for (stream, result) in streams.iter().zip(&outcome.results) {
        let batch = pipe.process_sequence(stream).unwrap();
        assert_eq!(batch.frames.len(), result.frames.len());
        for (b, s) in batch.frames.iter().zip(&result.frames) {
            assert_eq!(b.kind, s.kind);
            assert_eq!(b.disparity, s.disparity);
        }
    }
}

#[test]
fn per_session_order_survives_small_inboxes_and_many_workers() {
    // Worst case for reordering: more workers than sessions and an inbox of
    // one frame.  Result equality with the (order-sensitive) batch pipeline
    // proves frames were processed strictly in submission order.
    let pipe = pipeline(3);
    let streams = vec![sequence(60, 7)];
    let outcome = serve_sequences(
        &pipe,
        &streams,
        SchedulerConfig::per_core()
            .with_workers(4)
            .with_inbox_capacity(1),
    )
    .unwrap();
    let batch = pipe.process_sequence(&streams[0]).unwrap();
    for (b, s) in batch.frames.iter().zip(&outcome.results[0].frames) {
        assert_eq!(b.kind, s.kind);
        assert_eq!(b.disparity, s.disparity);
    }
}

#[test]
fn backpressure_bounds_queue_depth_and_loses_nothing() {
    let pipe = pipeline(2);
    let streams: Vec<StereoSequence> = (0..2).map(|i| sequence(70 + i, 6)).collect();
    let capacity = 2;
    let outcome = serve_sequences(
        &pipe,
        &streams,
        SchedulerConfig::per_core()
            .with_workers(2)
            .with_inbox_capacity(capacity),
    )
    .unwrap();
    for t in &outcome.telemetry {
        assert!(
            t.queue_depth.peak <= capacity,
            "peak {}",
            t.queue_depth.peak
        );
        assert_eq!(t.frames_submitted, 6);
        assert_eq!(t.frames_processed, 6);
        assert_eq!(t.frames_dropped, 0);
    }
    assert_eq!(outcome.aggregate.frames_processed, 12);
    assert!(outcome.aggregate.frames_per_second() > 0.0);
}

#[test]
fn telemetry_reports_latencies_and_key_frame_schedule() {
    let pipe = pipeline(2);
    // Window 2 on 6 frames: key frames at 0, 2, 4 -> 3 key + 3 non-key.
    let streams = vec![sequence(80, 6)];
    let outcome =
        serve_sequences(&pipe, &streams, SchedulerConfig::per_core().with_workers(2)).unwrap();
    let t = &outcome.telemetry[0];
    assert_eq!(t.key_frames, 3);
    assert_eq!(t.non_key_frames, 3);
    assert!((t.key_frame_ratio() - 0.5).abs() < 1e-12);
    assert!(t.service_latency.p50_us() > 0, "p50 must be non-zero");
    assert!(t.service_latency.p95_us() >= t.service_latency.p50_us());
    assert!(t.service_latency.p99_us() >= t.service_latency.p95_us());
    assert_eq!(t.service_latency.count(), 6);
    assert_eq!(outcome.aggregate.key_frames, 3);
    assert!(outcome.aggregate.service_latency.p95_us() > 0);
}

#[test]
fn a_failing_frame_poisons_only_its_session() {
    let pipe = pipeline(2);
    let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(2));
    let good = scheduler.add_session(pipe.state());
    let bad = scheduler.add_session(pipe.state());

    // A mismatched stereo pair makes the key-frame estimator fail.
    bad.submit(Image::zeros(WIDTH, HEIGHT), Image::zeros(WIDTH / 2, HEIGHT))
        .unwrap();
    let stream = sequence(90, 4);
    for frame in stream.frames() {
        good.submit(frame.left.clone(), frame.right.clone())
            .unwrap();
    }
    // Eventually the bad session rejects new frames with its stored error.
    let mut saw_error = None;
    for _ in 0..200 {
        match bad.submit(Image::zeros(WIDTH, HEIGHT), Image::zeros(WIDTH, HEIGHT)) {
            Err(e) => {
                saw_error = Some(e);
                break;
            }
            Ok(()) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    let report = scheduler.join();
    assert!(
        matches!(saw_error, Some(AsvError::Stereo(_))),
        "bad session should reject submissions with its error: {saw_error:?}"
    );
    assert!(report.sessions[1].error.is_some());
    assert!(report.sessions[1].telemetry.frames_dropped >= 1);
    // The good session is untouched.
    assert!(report.sessions[0].error.is_none());
    assert_eq!(report.sessions[0].frames.len(), 4);
    // And the report-level conversion surfaces the failure.
    assert!(report.into_ism_results().is_err());
}

#[test]
fn submissions_after_join_are_rejected() {
    let pipe = pipeline(2);
    let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(1));
    let handle = scheduler.add_session(pipe.state());
    assert_eq!(scheduler.session_count(), 1);
    let report = scheduler.join();
    assert_eq!(report.sessions.len(), 1);
    let err = handle
        .submit(Image::zeros(WIDTH, HEIGHT), Image::zeros(WIDTH, HEIGHT))
        .unwrap_err();
    assert!(matches!(err, AsvError::Shutdown), "{err:?}");
}

#[test]
fn processed_frame_planes_recycle_back_to_producers() {
    let pipe = pipeline(2);
    let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(1));
    let handle = scheduler.add_session(pipe.state());
    // Submit frames with a marker value; the kernels never mutate their
    // inputs, so a recycled (stale-content) plane still carries it.
    for _ in 0..3 {
        handle
            .submit(
                Image::filled(WIDTH, HEIGHT, 7.0),
                Image::filled(WIDTH, HEIGHT, 7.0),
            )
            .unwrap();
    }
    // Wait until every submitted frame has been stepped (load covers queued
    // plus in-flight frames).
    for _ in 0..2000 {
        if scheduler.load() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(scheduler.load(), 0, "frames still pending");
    // The pool now holds the processed planes: a matching checkout returns
    // one of them (identifiable by the marker), correctly shaped.
    let recycled = handle.recycled_frame(WIDTH, HEIGHT);
    assert_eq!((recycled.width(), recycled.height()), (WIDTH, HEIGHT));
    assert!(
        recycled.as_slice().iter().all(|&v| v == 7.0),
        "expected a recycled marker plane, got a fresh buffer"
    );
    // A size with no recycled plane still yields a usable (zeroed) frame.
    let fresh = handle.recycled_frame(WIDTH / 2, HEIGHT / 2);
    assert_eq!((fresh.width(), fresh.height()), (WIDTH / 2, HEIGHT / 2));
    assert!(fresh.as_slice().iter().all(|&v| v == 0.0));
    // Resubmitting the recycled plane flows through the engine unchanged.
    handle.submit(recycled, fresh_frame()).unwrap();
    let report = scheduler.join();
    assert_eq!(report.sessions[0].frames.len(), 4);
    assert!(report.sessions[0].error.is_none());
}

fn fresh_frame() -> Image {
    Image::filled(WIDTH, HEIGHT, 7.0)
}

#[test]
fn idle_sessions_can_trim_their_workspace() {
    let pipe = pipeline(2);
    let seq = sequence(91, 3);
    let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(1));
    let handle = scheduler.add_session(pipe.state());
    for frame in seq.frames() {
        handle
            .submit(frame.left.clone(), frame.right.clone())
            .unwrap();
    }
    for _ in 0..2000 {
        if scheduler.load() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // The stream is idle: the trim must run (workspace resident) and later
    // frames must still process correctly on re-warmed buffers.
    assert!(handle.trim_workspace());
    let frame = &seq.frames()[0];
    handle
        .submit(frame.left.clone(), frame.right.clone())
        .unwrap();
    let report = scheduler.join();
    assert_eq!(report.sessions[0].frames.len(), 4);
    assert!(report.sessions[0].error.is_none());
}

#[test]
fn per_session_metric_override_matches_a_census_batch_pipeline() {
    // A session registered with a census override on a SAD-configured state
    // must produce exactly what a census-configured batch pipeline produces,
    // while a plain session on the same scheduler stays on SAD.
    let sad = pipeline(2);
    let census = pipeline_with_metric(2, CostMetric::Census);
    let stream = sequence(77, 5);

    let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(2));
    let census_session = scheduler.add_session_with_metric(sad.state(), CostMetric::Census);
    let sad_session = scheduler.add_session(sad.state());
    for frame in stream.frames() {
        census_session
            .submit(frame.left.clone(), frame.right.clone())
            .unwrap();
        sad_session
            .submit(frame.left.clone(), frame.right.clone())
            .unwrap();
    }
    let report = scheduler.join();

    let census_batch = census.process_sequence(&stream).unwrap();
    let sad_batch = sad.process_sequence(&stream).unwrap();
    assert_eq!(report.sessions[0].frames.len(), census_batch.frames.len());
    for (streamed, batch) in report.sessions[0].frames.iter().zip(&census_batch.frames) {
        assert_eq!(streamed.disparity, batch.disparity);
    }
    for (streamed, batch) in report.sessions[1].frames.iter().zip(&sad_batch.frames) {
        assert_eq!(streamed.disparity, batch.disparity);
    }
    // The two metrics genuinely disagree somewhere, or the override test
    // would be vacuous.
    assert!(census_batch
        .frames
        .iter()
        .zip(&sad_batch.frames)
        .any(|(c, s)| c.disparity != s.disparity));
}
