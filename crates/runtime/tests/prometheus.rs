//! Golden test of `render_prometheus()`: the metric names, label keys and
//! line grammar are a scrape contract that must not drift silently.
//!
//! The telemetry under test is built with the simulation harness's
//! `VirtualClock`, so every latency sample — and therefore every rendered
//! line — is bit-stable across runs and machines.

use asv::FrameKind;
use asv_runtime::{
    render_prometheus, AggregateTelemetry, QosTelemetry, SessionTelemetry, Stage,
    TransportErrorKind, VirtualClock,
};
use std::collections::{BTreeMap, BTreeSet};

/// Deterministic per-stage totals (nanoseconds) of one key frame.
fn key_stage_totals() -> [u64; Stage::COUNT] {
    let mut totals = [0u64; Stage::COUNT];
    totals[Stage::DnnInfer.index()] = 8_000_000;
    totals[Stage::CostFill.index()] = 3_000_000;
    totals[Stage::SgmAggregate.index()] = 4_000_000;
    totals
}

/// Deterministic per-stage totals (nanoseconds) of one non-key frame.
fn non_key_stage_totals() -> [u64; Stage::COUNT] {
    let mut totals = [0u64; Stage::COUNT];
    totals[Stage::PyramidBuild.index()] = 150_000;
    totals[Stage::FlowLeft.index()] = 1_000_000;
    totals[Stage::FlowRight.index()] = 900_000;
    totals[Stage::Propagate.index()] = 200_000;
    totals[Stage::Refine.index()] = 300_000;
    totals
}

/// Builds the fixed two-shard telemetry fixture, latencies injected from a
/// virtual clock.
fn fixture() -> Vec<AggregateTelemetry> {
    let mut clock = VirtualClock::new();
    let mut cam_a = SessionTelemetry {
        frames_submitted: 4,
        ..SessionTelemetry::default()
    };
    cam_a.record_frame(
        FrameKind::KeyFrame,
        clock.advance_us(9_000),
        clock.advance_us(120),
    );
    cam_a.record_frame(
        FrameKind::NonKeyFrame,
        clock.advance_us(2_500),
        clock.advance_us(80),
    );
    cam_a.record_frame(
        FrameKind::NonKeyFrame,
        clock.advance_us(2_700),
        clock.advance_us(60),
    );
    cam_a.frames_shed = 1;
    cam_a.queue_depth.observe(2);
    cam_a.queue_depth.observe(1);
    cam_a.stage_latency.record_frame_totals(&key_stage_totals());
    cam_a
        .stage_latency
        .record_frame_totals(&non_key_stage_totals());
    cam_a
        .stage_latency
        .record_frame_totals(&non_key_stage_totals());
    // cam-a is SLO-managed and currently degraded: it contributes the
    // per-session level gauge plus the violation/actuation counters.
    cam_a.qos = QosTelemetry {
        enabled: true,
        level: 2,
        max_level_reached: 3,
        slo_violations: 5,
        actuations: [2, 1, 1, 3],
    };

    let mut cam_b = SessionTelemetry {
        frames_submitted: 2,
        ..SessionTelemetry::default()
    };
    cam_b.record_frame(
        FrameKind::KeyFrame,
        clock.advance_us(11_000),
        clock.advance_us(400),
    );
    cam_b.frames_dropped = 1;
    cam_b.queue_depth.observe(1);
    cam_b.stage_latency.record_frame_totals(&key_stage_totals());

    let mut shard0 = AggregateTelemetry::default();
    shard0.absorb_named(&cam_a, "cam-a");
    shard0.wall_seconds = 2.0;
    // Shard 0 lost a session to a failure (migrated away) and its network
    // edge counted two CRC faults and one socket error.
    shard0.sessions_migrated = 1;
    shard0.transport_errors[TransportErrorKind::Crc.index()] = 2;
    shard0.transport_errors[TransportErrorKind::Io.index()] = 1;
    let mut shard1 = AggregateTelemetry::default();
    shard1.absorb_named(&cam_b, "cam-b");
    shard1.wall_seconds = clock.now_seconds();
    // Faults counted on another shard's aggregate must sum into the same
    // cluster-wide (shard-less) transport family.
    shard1.transport_errors[TransportErrorKind::Crc.index()] = 1;
    shard1.transport_errors[TransportErrorKind::Deadline.index()] = 3;
    vec![shard0, shard1]
}

/// The locked metric-family contract: name -> type.
fn expected_families() -> BTreeMap<&'static str, &'static str> {
    BTreeMap::from([
        ("asv_cluster_shards", "gauge"),
        ("asv_sessions", "gauge"),
        ("asv_frames_submitted_total", "counter"),
        ("asv_frames_processed_total", "counter"),
        ("asv_key_frames_total", "counter"),
        ("asv_non_key_frames_total", "counter"),
        ("asv_frames_dropped_total", "counter"),
        ("asv_frames_shed_total", "counter"),
        ("asv_queue_depth", "gauge"),
        ("asv_queue_depth_peak", "gauge"),
        ("asv_uptime_seconds", "gauge"),
        ("asv_frames_per_second", "gauge"),
        ("asv_qos_slo_violations_total", "counter"),
        ("asv_sessions_migrated_total", "counter"),
        ("asv_transport_errors_total", "counter"),
        ("asv_qos_actuations_total", "counter"),
        ("asv_qos_level", "gauge"),
        ("asv_service_latency_microseconds", "histogram"),
        ("asv_queue_wait_microseconds", "histogram"),
        ("asv_stage_latency_microseconds", "histogram"),
    ])
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

/// A deliberately small parser for the Prometheus text exposition format:
/// `name{key="value",...} value` with `# HELP` / `# TYPE` comments.  Panics
/// (failing the test) on any malformed line.
fn parse(text: &str) -> (BTreeMap<String, String>, Vec<Sample>) {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines in the scrape body");
        assert_eq!(line.trim(), line, "no stray whitespace: {line:?}");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has text");
            assert!(!help.trim().is_empty(), "empty help for {name}");
            assert!(helps.insert(name.to_owned()), "duplicate HELP for {name}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown type {kind} for {name}"
            );
            assert!(helps.contains(name), "TYPE for {name} must follow its HELP");
            assert!(
                types.insert(name.to_owned(), kind.to_owned()).is_none(),
                "duplicate TYPE for {name}"
            );
        } else {
            assert!(!line.starts_with('#'), "unknown comment: {line}");
            samples.push(parse_sample(line));
        }
    }
    (types, samples)
}

fn parse_sample(line: &str) -> Sample {
    let (series, value) = line.rsplit_once(' ').expect("sample has a value");
    let value: f64 = value.parse().unwrap_or_else(|_| {
        panic!("value of {line:?} must parse as f64");
    });
    assert!(value.is_finite(), "non-finite value in {line:?}");
    let (name, labels) = match series.split_once('{') {
        None => (series.to_owned(), BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').expect("labels close with }");
            let mut labels = BTreeMap::new();
            for pair in body.split(',') {
                let (key, quoted) = pair.split_once('=').expect("label has =");
                assert!(
                    key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "bad label key {key:?}"
                );
                let unquoted = quoted
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .expect("label value is quoted");
                assert!(
                    labels.insert(key.to_owned(), unquoted.to_owned()).is_none(),
                    "duplicate label {key} in {line}"
                );
            }
            (name.to_owned(), labels)
        }
    };
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && name.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_'),
        "bad metric name {name:?}"
    );
    Sample {
        name,
        labels,
        value,
    }
}

/// Strips histogram sample suffixes back to the family name.
fn family_of(sample_name: &str, types: &BTreeMap<String, String>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base.to_owned();
            }
        }
    }
    sample_name.to_owned()
}

#[test]
fn scrape_format_is_valid_and_the_family_set_is_locked() {
    let text = render_prometheus(&fixture());
    let (types, samples) = parse(&text);

    // The family set is the contract: additions are fine (extend
    // `expected_families`), renames and removals are not.
    let expected = expected_families();
    assert_eq!(
        types
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect::<BTreeMap<_, _>>(),
        expected,
        "metric families drifted"
    );

    // Every sample belongs to a declared family and (except the two
    // cluster-wide families: the shard gauge and the shard-less transport
    // error counter) carries a shard label.
    for sample in &samples {
        let family = family_of(&sample.name, &types);
        assert!(types.contains_key(&family), "undeclared family {family}");
        if sample.name == "asv_cluster_shards" {
            assert!(sample.labels.is_empty());
        } else if sample.name == "asv_transport_errors_total" {
            assert!(
                !sample.labels.contains_key("shard"),
                "transport errors are a cluster-wide family"
            );
        } else {
            let shard = sample.labels.get("shard").expect("shard label");
            assert!(shard == "0" || shard == "1", "unknown shard {shard}");
        }
        assert!(sample.value >= 0.0, "negative sample {}", sample.name);
        // Transport-family samples carry a known error kind; nothing else
        // carries a kind label.
        if sample.name == "asv_transport_errors_total" {
            let kind = sample.labels.get("kind").expect("kind label");
            assert!(
                TransportErrorKind::ALL.iter().any(|k| k.name() == kind),
                "unknown transport error kind {kind}"
            );
        } else {
            assert!(
                !sample.labels.contains_key("kind"),
                "unexpected kind label on {}",
                sample.name
            );
        }
        // Stage-family samples carry a known stage label; nothing else does.
        if family_of(&sample.name, &types) == "asv_stage_latency_microseconds" {
            let stage = sample.labels.get("stage").expect("stage label");
            assert!(
                Stage::ALL.iter().any(|s| s.name() == stage),
                "unknown stage {stage}"
            );
        } else {
            assert!(
                !sample.labels.contains_key("stage"),
                "unexpected stage label on {}",
                sample.name
            );
        }
    }

    // The transport family renders one sample per kind, zeros included.
    assert_eq!(
        samples
            .iter()
            .filter(|s| s.name == "asv_transport_errors_total")
            .count(),
        TransportErrorKind::COUNT,
        "one transport sample per error kind"
    );

    // Stage histogram invariant: per (shard, stage) the +Inf bucket equals
    // _count, and only stages that recorded samples appear.
    let stage_counts: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "asv_stage_latency_microseconds_count")
        .collect();
    assert_eq!(
        stage_counts.len(),
        8 + 3,
        "8 stages on shard 0, 3 on shard 1"
    );
    for count in &stage_counts {
        assert!(count.value > 0.0, "silent stages are omitted");
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "asv_stage_latency_microseconds_bucket"
                    && s.labels.get("le").map(String::as_str) == Some("+Inf")
                    && s.labels.get("shard") == count.labels.get("shard")
                    && s.labels.get("stage") == count.labels.get("stage")
            })
            .expect("stage series has a +Inf bucket");
        assert_eq!(inf.value, count.value, "+Inf bucket equals _count");
    }

    // Histogram invariants per (family, shard): cumulative buckets are
    // non-decreasing, bucket upper bounds strictly ascend, the +Inf bucket
    // equals _count, and _sum/_count are present.
    for family in [
        "asv_service_latency_microseconds",
        "asv_queue_wait_microseconds",
    ] {
        for shard in ["0", "1"] {
            let of_shard = |suffix: &str| -> Vec<&Sample> {
                samples
                    .iter()
                    .filter(|s| {
                        s.name == format!("{family}{suffix}")
                            && s.labels.get("shard").map(String::as_str) == Some(shard)
                    })
                    .collect()
            };
            let buckets = of_shard("_bucket");
            assert!(buckets.len() > 1, "{family} shard {shard} has buckets");
            let mut last_le = f64::NEG_INFINITY;
            let mut last_cumulative = f64::NEG_INFINITY;
            let mut inf_value = None;
            for bucket in &buckets {
                let le = bucket.labels.get("le").expect("bucket le label");
                let le_value = if le == "+Inf" {
                    inf_value = Some(bucket.value);
                    f64::INFINITY
                } else {
                    le.parse::<f64>().expect("numeric le")
                };
                assert!(le_value > last_le, "le not ascending in {family}");
                assert!(
                    bucket.value >= last_cumulative,
                    "cumulative bucket counts regressed in {family} shard {shard}"
                );
                last_le = le_value;
                last_cumulative = bucket.value;
            }
            let count = of_shard("_count");
            let sum = of_shard("_sum");
            assert_eq!(count.len(), 1);
            assert_eq!(sum.len(), 1);
            assert_eq!(
                Some(count[0].value),
                inf_value,
                "{family} +Inf bucket must equal _count"
            );
        }
    }
}

#[test]
fn golden_scalar_lines_are_bit_stable() {
    let text = render_prometheus(&fixture());
    // The full fixture is virtual-clock driven, so these exact lines are the
    // golden contract for names, labels and value formatting.
    let golden = [
        "asv_cluster_shards 2",
        "asv_sessions{shard=\"0\"} 1",
        "asv_sessions{shard=\"1\"} 1",
        "asv_frames_submitted_total{shard=\"0\"} 4",
        "asv_frames_submitted_total{shard=\"1\"} 2",
        "asv_frames_processed_total{shard=\"0\"} 3",
        "asv_frames_processed_total{shard=\"1\"} 1",
        "asv_key_frames_total{shard=\"0\"} 1",
        "asv_key_frames_total{shard=\"1\"} 1",
        "asv_non_key_frames_total{shard=\"0\"} 2",
        "asv_non_key_frames_total{shard=\"1\"} 0",
        "asv_frames_dropped_total{shard=\"0\"} 0",
        "asv_frames_dropped_total{shard=\"1\"} 1",
        "asv_frames_shed_total{shard=\"0\"} 1",
        "asv_frames_shed_total{shard=\"1\"} 0",
        "asv_queue_depth{shard=\"0\"} 1",
        "asv_queue_depth{shard=\"1\"} 1",
        "asv_queue_depth_peak{shard=\"0\"} 2",
        "asv_queue_depth_peak{shard=\"1\"} 1",
        "asv_uptime_seconds{shard=\"0\"} 2.000000",
        "asv_uptime_seconds{shard=\"1\"} 0.025860",
        "asv_frames_per_second{shard=\"0\"} 1.500000",
        // QoS: cam-a (shard 0) is SLO-managed at level 2; cam-b carries no
        // controller, so shard 1 renders zero counters and no level gauge.
        "asv_qos_slo_violations_total{shard=\"0\"} 5",
        "asv_qos_slo_violations_total{shard=\"1\"} 0",
        // Failure families: migrations are per shard (zeros included);
        // transport errors are cluster-wide, summed across shards, one
        // sample per kind with no shard label.
        "asv_sessions_migrated_total{shard=\"0\"} 1",
        "asv_sessions_migrated_total{shard=\"1\"} 0",
        "asv_transport_errors_total{kind=\"bad_magic\"} 0",
        "asv_transport_errors_total{kind=\"crc\"} 3",
        "asv_transport_errors_total{kind=\"io\"} 1",
        "asv_transport_errors_total{kind=\"deadline\"} 3",
        "asv_qos_actuations_total{shard=\"0\",action=\"census_metric\"} 2",
        "asv_qos_actuations_total{shard=\"0\",action=\"widen_window\"} 1",
        "asv_qos_actuations_total{shard=\"0\",action=\"relax_motion\"} 1",
        "asv_qos_actuations_total{shard=\"0\",action=\"recover\"} 3",
        "asv_qos_actuations_total{shard=\"1\",action=\"census_metric\"} 0",
        "asv_qos_level{shard=\"0\",session=\"cam-a\"} 2",
        "asv_service_latency_microseconds_sum{shard=\"0\"} 14200",
        "asv_service_latency_microseconds_count{shard=\"0\"} 3",
        "asv_service_latency_microseconds_sum{shard=\"1\"} 11000",
        "asv_queue_wait_microseconds_sum{shard=\"0\"} 260",
        "asv_queue_wait_microseconds_count{shard=\"1\"} 1",
        // Spot-check cumulative buckets at the crossing points: 2500 and
        // 2700 µs land in [2048, 4096), 9000 in [8192, 16384).
        "asv_service_latency_microseconds_bucket{shard=\"0\",le=\"2047\"} 0",
        "asv_service_latency_microseconds_bucket{shard=\"0\",le=\"4095\"} 2",
        "asv_service_latency_microseconds_bucket{shard=\"0\",le=\"8191\"} 2",
        "asv_service_latency_microseconds_bucket{shard=\"0\",le=\"16383\"} 3",
        "asv_service_latency_microseconds_bucket{shard=\"0\",le=\"+Inf\"} 3",
        // Per-stage histograms: shard 0 saw one key frame (dnn_infer 8 ms)
        // and two non-key frames (flow_left 1 ms each); shard 1 one key
        // frame.  Sums are microseconds.
        "asv_stage_latency_microseconds_sum{shard=\"0\",stage=\"dnn_infer\"} 8000",
        "asv_stage_latency_microseconds_count{shard=\"0\",stage=\"dnn_infer\"} 1",
        "asv_stage_latency_microseconds_sum{shard=\"0\",stage=\"flow_left\"} 2000",
        "asv_stage_latency_microseconds_count{shard=\"0\",stage=\"flow_left\"} 2",
        "asv_stage_latency_microseconds_sum{shard=\"1\",stage=\"sgm_aggregate\"} 4000",
        // 1000 µs lands in [512, 1024): cumulative 0 below, 2 at le=1023.
        "asv_stage_latency_microseconds_bucket{shard=\"0\",stage=\"flow_left\",le=\"511\"} 0",
        "asv_stage_latency_microseconds_bucket{shard=\"0\",stage=\"flow_left\",le=\"1023\"} 2",
        "asv_stage_latency_microseconds_bucket{shard=\"0\",stage=\"flow_left\",le=\"+Inf\"} 2",
    ];
    for line in golden {
        assert!(
            text.lines().any(|l| l == line),
            "golden line missing from scrape body: {line}"
        );
    }
    // A session without a controller must not export a level gauge.
    assert!(
        !text.contains("asv_qos_level{shard=\"1\""),
        "cam-b has no QoS controller yet exported a level gauge"
    );
    // Rendering is a pure function of the telemetry.
    assert_eq!(text, render_prometheus(&fixture()));
}
