//! Cluster integration tests: the determinism proof (N-shard cluster ==
//! single scheduler == batch), placement behaviour and cross-shard
//! telemetry.

use asv::ism::{IsmConfig, IsmPipeline};
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_image::Image;
use asv_runtime::sim::{run_cluster_sim, session_key, SimConfig};
use asv_runtime::{
    Cluster, ClusterConfig, Ingest, IngestConfig, Placement, SchedulerConfig, ShedPolicy,
};
use asv_stereo::block_matching::BlockMatchParams;

fn pipeline(width: usize, height: usize, window: usize) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: window,
        refine: BlockMatchParams {
            max_disparity: 24,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 24,
            occlusion_handling: true,
            ..Default::default()
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(height, width), config.surrogate),
    )
}

/// The acceptance-criterion proof: for a seeded workload, a cluster of 1, 2
/// and 4 shards (fronted by the async ingest layer) produces per-session
/// disparity results byte-identical to a single scheduler and to batch
/// `process_sequence`.
#[test]
fn cluster_is_byte_identical_to_single_scheduler_and_batch() {
    let sim = SimConfig::small();
    let pipe = pipeline(sim.width, sim.height, 2);
    let report = run_cluster_sim(&pipe, &sim, &[1, 2, 4]).expect("simulation runs");
    assert!(
        report.is_deterministic(),
        "divergences: {:#?}",
        report.mismatches
    );
    // single-scheduler pass + three cluster passes, every frame compared.
    let per_pass = (sim.sessions * sim.frames_per_session) as u64;
    assert_eq!(report.frames_compared, per_pass * 4);
    assert_eq!(report.shard_counts, vec![1, 2, 4]);
}

/// A different seed must still be deterministic (the property is structural,
/// not a lucky interleaving of one workload).
#[test]
fn determinism_holds_under_a_second_seed_and_heavier_jitter() {
    let sim = SimConfig {
        seed: 2027,
        submit_jitter_us: 800,
        ..SimConfig::small()
    };
    let pipe = pipeline(sim.width, sim.height, 3);
    let report = run_cluster_sim(&pipe, &sim, &[2]).expect("simulation runs");
    assert!(
        report.is_deterministic(),
        "divergences: {:#?}",
        report.mismatches
    );
}

#[test]
fn pinned_placement_is_honored_and_bounds_checked() {
    let pipe = pipeline(32, 24, 2);
    let cluster = Cluster::new(
        ClusterConfig::new(3).with_shard_config(SchedulerConfig::per_core().with_workers(0)),
    );
    for shard in 0..3 {
        let placed = cluster
            .add_session_with(Placement::Pinned(shard), "pinned", pipe.state())
            .expect("in range");
        assert_eq!(placed.shard(), shard);
        assert_eq!(placed.key(), "pinned");
    }
    let err = cluster
        .add_session_with(Placement::Pinned(3), "oob", pipe.state())
        .unwrap_err();
    assert!(
        matches!(err, asv::AsvError::Config { .. }),
        "out-of-range pin must be a config error: {err:?}"
    );
}

#[test]
fn saturated_shard_falls_back_to_least_loaded() {
    let pipe = pipeline(32, 24, 2);
    // Zero-worker shards with one-frame inboxes: saturation is under test
    // control because nothing ever drains.
    let cluster = Cluster::new(
        ClusterConfig::new(2).with_shard_config(
            SchedulerConfig::per_core()
                .with_workers(0)
                .with_inbox_capacity(1),
        ),
    );
    let key = "hot-camera";
    let hashed = cluster.shard_for_key(key);
    let first = cluster.add_session(key, pipe.state());
    assert_eq!(first.shard(), hashed, "unsaturated: hashed placement wins");
    // Fill the hashed shard's only session's only inbox slot.
    first
        .submit(Image::zeros(32, 24), Image::zeros(32, 24))
        .unwrap();

    let second = cluster.add_session(key, pipe.state());
    assert_eq!(
        second.shard(),
        1 - hashed,
        "saturated hashed shard must fall back to the least-loaded shard"
    );
    // Explicit least-loaded placement also avoids the saturated shard.
    let third = cluster
        .add_session_with(Placement::LeastLoaded, "third", pipe.state())
        .unwrap();
    assert_eq!(third.shard(), 1 - hashed);
    assert_eq!(cluster.least_loaded_shard(), 1 - hashed);
}

#[test]
fn cluster_report_merges_cross_shard_telemetry() {
    let sim = SimConfig::small().with_sessions(4).with_frames(3);
    let pipe = pipeline(sim.width, sim.height, 2);
    let shard_config = SchedulerConfig::per_core()
        .with_workers(2)
        .with_inbox_capacity(2);
    let cluster = Cluster::new(ClusterConfig::new(2).with_shard_config(shard_config));
    let ingest = Ingest::new(IngestConfig::default().with_policy(ShedPolicy::Block));
    let streams = asv_runtime::sim::generate_streams(&sim);
    let routes: Vec<_> = (0..sim.sessions)
        .map(|i| {
            ingest.register(
                cluster
                    .add_session(&session_key(i), pipe.state())
                    .handle()
                    .clone(),
            )
        })
        .collect();
    std::thread::scope(|scope| {
        for (route, stream) in routes.iter().zip(&streams) {
            let route = route.clone();
            scope.spawn(move || {
                for frame in stream.frames() {
                    route
                        .submit(frame.left.clone(), frame.right.clone())
                        .unwrap();
                }
            });
        }
    });
    let stats = ingest.join();
    assert_eq!(
        stats.accepted(),
        (sim.sessions * sim.frames_per_session) as u64
    );
    assert_eq!(stats.forwarded(), stats.accepted());
    assert_eq!(stats.shed(), 0);

    let report = cluster.join();
    assert_eq!(report.shards.len(), 2);
    assert_eq!(report.aggregate.sessions, sim.sessions);
    assert_eq!(
        report.aggregate.frames_processed,
        (sim.sessions * sim.frames_per_session) as u64
    );
    let by_shard: u64 = report
        .shards
        .iter()
        .map(|s| s.aggregate.frames_processed)
        .sum();
    assert_eq!(by_shard, report.aggregate.frames_processed);
    // The merged histogram carries every frame's sample.
    assert_eq!(
        report.aggregate.service_latency.count(),
        report.aggregate.frames_processed
    );
    // Every session is findable by key, on exactly one shard.
    for i in 0..sim.sessions {
        let session = report
            .session_by_key(&session_key(i))
            .expect("session present");
        assert_eq!(session.frames.len(), sim.frames_per_session);
        assert!(session.error.is_none());
    }
    // And the scrape body labels both shards.
    let scrape = report.render_prometheus();
    assert!(scrape.contains("asv_cluster_shards 2"));
    assert!(scrape.contains("asv_frames_processed_total{shard=\"0\"}"));
    assert!(scrape.contains("asv_frames_processed_total{shard=\"1\"}"));
}

/// A live cluster can be scraped mid-serve without shutting down.
#[test]
fn live_telemetry_snapshot_does_not_disturb_serving() {
    let sim = SimConfig::small().with_sessions(1).with_frames(3);
    let pipe = pipeline(sim.width, sim.height, 2);
    let cluster = Cluster::new(
        ClusterConfig::new(2).with_shard_config(
            SchedulerConfig::per_core()
                .with_workers(1)
                .with_inbox_capacity(2),
        ),
    );
    let session = cluster.add_session("probe", pipe.state());
    let stream = asv_runtime::sim::generate_streams(&sim);
    for frame in stream[0].frames() {
        session
            .submit(frame.left.clone(), frame.right.clone())
            .unwrap();
        let merged = cluster.merged_telemetry();
        assert_eq!(merged.sessions, 1);
        assert!(!cluster.render_prometheus().is_empty());
    }
    let report = cluster.join();
    assert_eq!(
        report.session_by_key("probe").unwrap().frames.len(),
        stream[0].frames().len()
    );
}
