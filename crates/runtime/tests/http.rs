//! End-to-end test of the live observability endpoint: a real scheduler
//! processes frames, a [`MetricsServer`] serves its observer over TCP, and
//! the scrapes are validated with the same parser CI uses.

use asv::ism::{IsmConfig, IsmPipeline};
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_runtime::{parse_scrape, MetricsServer, Scheduler, SchedulerConfig, Stage};
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::BlockMatchParams;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WIDTH: usize = 48;
const HEIGHT: usize = 36;

fn pipeline(window: usize) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: window,
        refine: BlockMatchParams {
            max_disparity: 24,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 24,
            ..Default::default()
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(HEIGHT, WIDTH), config.surrogate),
    )
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn live_endpoint_serves_metrics_trace_and_health() {
    let scheduler = Scheduler::new(SchedulerConfig::per_core().with_workers(2));
    let pipe = pipeline(2);
    let streams: Vec<StereoSequence> = (0..2)
        .map(|i| {
            StereoSequence::generate(
                &SceneConfig::scene_flow_like(WIDTH, HEIGHT)
                    .with_seed(90 + i)
                    .with_objects(2),
                4,
            )
        })
        .collect();
    let handles: Vec<_> = (0..streams.len())
        .map(|i| scheduler.add_session_labeled(pipe.state(), Some(format!("camera-{i}"))))
        .collect();

    let observer = scheduler.observer();
    let server = MetricsServer::serve("127.0.0.1:0", Arc::new(observer)).expect("bind endpoint");
    let addr = server.local_addr();

    for (stream, handle) in streams.iter().zip(&handles) {
        for frame in stream.frames() {
            handle
                .submit(frame.left.clone(), frame.right.clone())
                .expect("submit");
        }
    }
    // Wait for the workers to drain both sessions (every frame processed).
    let expected = (streams.len() * 4) as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while scheduler.telemetry_snapshot().frames_processed < expected {
        assert!(Instant::now() < deadline, "frames not processed in time");
        std::thread::sleep(Duration::from_millis(10));
    }

    // /healthz
    let (head, body) = get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "healthz head: {head}");
    assert_eq!(body, "ok\n");

    // /metrics: parses cleanly and carries per-stage histograms.
    let (head, body) = get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"));
    assert!(head.contains("text/plain; version=0.0.4"));
    let samples = parse_scrape(&body).expect("live scrape body parses");
    let processed = samples
        .iter()
        .find(|s| s.name == "asv_frames_processed_total")
        .expect("processed counter present");
    assert_eq!(processed.value, expected as f64);
    // Both frame kinds ran (window 2 over 4 frames), so both the key-frame
    // stage and the propagation stages must have histograms.
    for stage in [
        Stage::DnnInfer,
        Stage::FlowLeft,
        Stage::Propagate,
        Stage::Refine,
    ] {
        let count = samples
            .iter()
            .find(|s| {
                s.name == "asv_stage_latency_microseconds_count"
                    && s.label("stage") == Some(stage.name())
            })
            .unwrap_or_else(|| panic!("no histogram for stage {}", stage.name()));
        assert!(count.value > 0.0, "stage {} recorded frames", stage.name());
    }

    // /trace: Chrome-loadable JSON with the session labels as thread names
    // and one complete event per span.
    let (head, body) = get(addr, "/trace");
    assert!(head.starts_with("HTTP/1.1 200 OK"));
    assert!(head.contains("application/json"));
    assert!(body.starts_with("{\"traceEvents\":["));
    assert!(body.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
    assert!(body.contains("\"thread_name\""));
    assert!(body.contains("camera-0"));
    assert!(body.contains("camera-1"));
    assert!(body.contains("\"name\":\"frame\""));
    assert!(body.contains("\"name\":\"dnn_infer\""));
    assert!(body.contains("\"name\":\"refine\""));
    assert!(body.contains("\"ph\":\"X\""));

    server.shutdown();
    let report = scheduler.join();
    assert_eq!(report.aggregate.frames_processed, expected);
    // The joined report folds the same per-stage telemetry the scrape saw.
    assert!(
        report
            .aggregate
            .stage_latency
            .histogram(Stage::DnnInfer)
            .count()
            > 0
    );
}

/// The graceful-drain contract: once a cluster begins draining, `/healthz`
/// answers 503 so load balancers stop routing new sessions — while
/// `/metrics` keeps serving so the final telemetry remains scrapable.
#[test]
fn draining_cluster_flips_healthz_to_503_but_keeps_metrics_up() {
    use asv_runtime::{Cluster, ClusterConfig};

    let cluster = Cluster::new(ClusterConfig::new(2));
    let server =
        MetricsServer::serve("127.0.0.1:0", Arc::new(cluster.observer())).expect("bind endpoint");
    let addr = server.local_addr();

    let (head, body) = get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "healthy head: {head}");
    assert_eq!(body, "ok\n");

    cluster.begin_drain();
    let (head, _) = get(addr, "/healthz");
    assert!(
        head.starts_with("HTTP/1.1 503 Service Unavailable"),
        "draining head: {head}"
    );
    // The scrape endpoint stays up through the drain.
    let (head, body) = get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "metrics head: {head}");
    parse_scrape(&body).expect("scrape parses while draining");

    server.shutdown();
    cluster.join();
}
