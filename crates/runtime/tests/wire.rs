//! Wire-format fuzz, property and allocation tests.
//!
//! Locked properties of `asv_runtime::wire`:
//! * `decode(encode(frame))` round-trips byte-identically — key, sequence
//!   number and both planes;
//! * every single-byte corruption of a valid message is rejected with a
//!   structured [`AsvError::Wire`], never a panic;
//! * truncation at *every* byte boundary is rejected;
//! * oversized length prefixes and version/magic mismatches map to their
//!   dedicated [`WireFault`] variants;
//! * steady-state decoding out of a warm [`BufferPool`] performs **zero**
//!   heap allocations (the acceptance criterion of the networked-transport
//!   tentpole), proven with the counting allocator installed globally.

use asv::error::WireFault;
use asv::AsvError;
use asv_image::Image;
use asv_mem::alloc_count::{self, CountingAllocator};
use asv_mem::BufferPool;
use asv_runtime::wire::{self, HEADER_BYTES, MAX_MESSAGE_BYTES};
use proptest::prelude::*;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

/// A deterministic non-trivial test plane: every pixel distinct.
fn plane(width: usize, height: usize, salt: f32) -> Image {
    let data = (0..width * height)
        .map(|i| (i as f32).mul_add(0.125, salt))
        .collect();
    Image::from_vec(width, height, data).expect("sized to match")
}

fn encoded(key: &str, seq: u64, width: usize, height: usize) -> Vec<u8> {
    let left = plane(width, height, 0.0);
    let right = plane(width, height, 1000.0);
    let mut out = Vec::new();
    wire::encode_frame_into(&mut out, key, seq, &left, &right).expect("valid frame encodes");
    out
}

fn wire_fault(error: AsvError) -> WireFault {
    match error {
        AsvError::Wire { fault, .. } => fault,
        other => panic!("expected AsvError::Wire, got {other:?}"),
    }
}

#[test]
fn round_trip_preserves_every_field() {
    let left = plane(13, 7, 0.0);
    let right = plane(13, 7, 500.0);
    let mut bytes = Vec::new();
    wire::encode_frame_into(&mut bytes, "cam-3/front", 42, &left, &right).unwrap();
    let mut pool = BufferPool::new();
    let frame = wire::decode_frame(&bytes, MAX_MESSAGE_BYTES, &mut pool).unwrap();
    assert_eq!(frame.key, "cam-3/front");
    assert_eq!(frame.seq, 42);
    assert_eq!(frame.left.as_slice(), left.as_slice());
    assert_eq!(frame.right.as_slice(), right.as_slice());
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    let bytes = encoded("cam", 5, 6, 4);
    for cut in 0..bytes.len() {
        let fault = wire_fault(
            wire::validate(&bytes[..cut], MAX_MESSAGE_BYTES)
                .expect_err("a truncated message must never validate"),
        );
        assert!(
            matches!(fault, WireFault::Truncated),
            "cut at {cut} produced {fault:?}, expected Truncated"
        );
    }
}

#[test]
fn every_single_byte_corruption_is_rejected() {
    let bytes = encoded("cam", 9, 5, 3);
    for at in 0..bytes.len() {
        let mut mangled = bytes.clone();
        mangled[at] ^= 0x41;
        let error = wire::validate(&mangled, MAX_MESSAGE_BYTES)
            .err()
            .unwrap_or_else(|| panic!("flipping byte {at} went undetected"));
        // Any structured wire fault is acceptable — which one depends on
        // the field hit — but it must be a Wire error, not a panic or a
        // silently-decoded frame.
        let _ = wire_fault(error);
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_reading_further() {
    let mut bytes = encoded("cam", 0, 4, 4);
    let huge = (MAX_MESSAGE_BYTES as u32) + 1;
    bytes[..4].copy_from_slice(&huge.to_le_bytes());
    let fault = wire_fault(wire::validate(&bytes, MAX_MESSAGE_BYTES).unwrap_err());
    assert!(matches!(fault, WireFault::Oversized), "got {fault:?}");
}

#[test]
fn version_mismatch_is_rejected() {
    let mut bytes = encoded("cam", 0, 4, 4);
    bytes[8..10].copy_from_slice(&(wire::VERSION + 1).to_le_bytes());
    // Re-stamp the CRC so the version check (which runs first) is what fires.
    restamp_crc(&mut bytes);
    let fault = wire_fault(wire::validate(&bytes, MAX_MESSAGE_BYTES).unwrap_err());
    assert!(matches!(fault, WireFault::Version), "got {fault:?}");
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = encoded("cam", 0, 4, 4);
    bytes[4..8].copy_from_slice(b"HTTP");
    restamp_crc(&mut bytes);
    let fault = wire_fault(wire::validate(&bytes, MAX_MESSAGE_BYTES).unwrap_err());
    assert!(matches!(fault, WireFault::BadMagic), "got {fault:?}");
}

#[test]
fn payload_corruption_is_caught_by_the_crc() {
    let mut bytes = encoded("cam", 0, 4, 4);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let fault = wire_fault(wire::validate(&bytes, MAX_MESSAGE_BYTES).unwrap_err());
    assert!(matches!(fault, WireFault::Crc), "got {fault:?}");
}

#[test]
fn hello_round_trips_and_is_not_a_frame() {
    let mut bytes = Vec::new();
    wire::encode_hello_into(&mut bytes, "cam-1/front").unwrap();
    match wire::validate_message(&bytes, MAX_MESSAGE_BYTES).unwrap() {
        wire::Message::Hello { key } => assert_eq!(key, "cam-1/front"),
        other => panic!("expected a hello, got {other:?}"),
    }
    // The frame-only validator refuses a structurally valid hello.
    let fault = wire_fault(wire::validate(&bytes, MAX_MESSAGE_BYTES).unwrap_err());
    assert!(matches!(fault, WireFault::BadMagic), "got {fault:?}");
    // And hello corruption is caught like frame corruption.
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(wire::validate_message(&bytes, MAX_MESSAGE_BYTES).is_err());
}

#[test]
fn oversized_session_key_is_rejected_at_both_ends() {
    let key = "k".repeat(wire::MAX_KEY_BYTES + 1);
    let left = plane(4, 4, 0.0);
    let right = plane(4, 4, 1.0);
    let mut bytes = Vec::new();
    let fault = wire_fault(
        wire::encode_frame_into(&mut bytes, &key, 0, &left, &right)
            .expect_err("over-cap key must not encode"),
    );
    assert!(matches!(fault, WireFault::Key), "got {fault:?}");
    let fault = wire_fault(
        wire::encode_hello_into(&mut bytes, &key).expect_err("over-cap hello must not encode"),
    );
    assert!(matches!(fault, WireFault::Key), "got {fault:?}");

    // A hand-built message smuggling an over-cap key length is refused by
    // the validator, so hostile peers cannot grow server-side session
    // state with multi-kilobyte keys.
    let key_len = wire::MAX_KEY_BYTES + 1;
    let declared = HEADER_BYTES - 4 + key_len + 8;
    let mut msg = Vec::new();
    msg.extend_from_slice(&u32::to_le_bytes(declared as u32));
    msg.extend_from_slice(b"ASVF");
    msg.extend_from_slice(&wire::VERSION.to_le_bytes());
    msg.extend_from_slice(&u16::to_le_bytes(key_len as u16));
    msg.extend_from_slice(&0u64.to_le_bytes());
    msg.extend_from_slice(&1u32.to_le_bytes());
    msg.extend_from_slice(&1u32.to_le_bytes());
    msg.extend_from_slice(&[0, 0, 0, 0]);
    msg.resize(4 + declared, b'k');
    restamp_crc(&mut msg);
    let fault = wire_fault(wire::validate(&msg, MAX_MESSAGE_BYTES).unwrap_err());
    assert!(matches!(fault, WireFault::Key), "got {fault:?}");
}

#[test]
fn non_utf8_key_is_rejected() {
    let mut bytes = encoded("abc", 0, 4, 4);
    bytes[HEADER_BYTES] = 0xFF;
    bytes[HEADER_BYTES + 1] = 0xFE;
    restamp_crc(&mut bytes);
    let fault = wire_fault(wire::validate(&bytes, MAX_MESSAGE_BYTES).unwrap_err());
    assert!(matches!(fault, WireFault::Key), "got {fault:?}");
}

/// Recomputes and patches the CRC so structural corruptions upstream of the
/// checksum can be tested in isolation.
fn restamp_crc(bytes: &mut [u8]) {
    // Mirror the module's layout: CRC of everything after the length
    // prefix, checksum field read as zero (CRC-32 IEEE reflected).
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            t[i] = crc;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    let mut update = |chunk: &[u8]| {
        for &b in chunk {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    };
    update(&bytes[4..28]);
    update(&[0, 0, 0, 0]);
    update(&bytes[32..]);
    let crc = !crc;
    bytes[28..32].copy_from_slice(&crc.to_le_bytes());
}

/// The tentpole acceptance criterion: once the reusable encode buffer and
/// the plane pool have been warmed by one frame, the whole
/// encode → validate → decode cycle runs with zero heap allocations.
#[test]
fn warm_pool_decode_performs_zero_allocations() {
    let width = 32;
    let height = 24;
    let left = plane(width, height, 0.0);
    let right = plane(width, height, 250.0);
    let mut bytes = Vec::new();
    let mut pool = BufferPool::new();

    // Warm-up: grows the encode buffer and seeds the pool with two
    // plane-sized buffers.
    wire::encode_frame_into(&mut bytes, "warm", 0, &left, &right).unwrap();
    let warm = wire::decode_frame(&bytes, MAX_MESSAGE_BYTES, &mut pool).unwrap();
    pool.put(warm.left.into_vec());
    pool.put(warm.right.into_vec());

    let before = alloc_count::allocations();
    for seq in 1..=16u64 {
        wire::encode_frame_into(&mut bytes, "warm", seq, &left, &right).unwrap();
        let frame = wire::decode_frame(&bytes, MAX_MESSAGE_BYTES, &mut pool).unwrap();
        assert_eq!(frame.seq, seq);
        pool.put(frame.left.into_vec());
        pool.put(frame.right.into_vec());
    }
    let allocs = alloc_count::allocations() - before;
    assert_eq!(
        allocs, 0,
        "steady-state encode/decode allocated {allocs} times over 16 frames"
    );
}

/// The `fill_planes` server path (decoding into recycled shard images) is
/// likewise allocation-free, and refuses mis-sized targets.
#[test]
fn fill_planes_reuses_caller_images_without_allocating() {
    let left = plane(16, 12, 0.0);
    let right = plane(16, 12, 99.0);
    let mut bytes = Vec::new();
    wire::encode_frame_into(&mut bytes, "s", 3, &left, &right).unwrap();

    let mut dst_left = Image::zeros(16, 12);
    let mut dst_right = Image::zeros(16, 12);
    let before = alloc_count::allocations();
    let frame = wire::validate(&bytes, MAX_MESSAGE_BYTES).unwrap();
    frame.fill_planes(&mut dst_left, &mut dst_right).unwrap();
    let allocs = alloc_count::allocations() - before;
    assert_eq!(allocs, 0, "fill_planes allocated {allocs} times");
    assert_eq!(dst_left.as_slice(), left.as_slice());
    assert_eq!(dst_right.as_slice(), right.as_slice());

    let mut wrong = Image::zeros(8, 8);
    let fault = wire_fault(frame.fill_planes(&mut wrong, &mut dst_right).unwrap_err());
    assert!(matches!(fault, WireFault::Length), "got {fault:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// decode(encode(frame)) is the identity on key, sequence and pixels,
    /// for arbitrary dimensions, keys and plane contents.
    #[test]
    fn encode_decode_round_trips_byte_identically(
        seq in 0u64..u64::MAX,
        width in 1usize..24,
        height in 1usize..16,
        key_salt in 0usize..64,
        pixel_salt in -1000.0f32..1000.0,
    ) {
        let key = format!("session-{key_salt}");
        let left = plane(width, height, pixel_salt);
        let right = plane(width, height, -pixel_salt);
        let mut bytes = Vec::new();
        wire::encode_frame_into(&mut bytes, &key, seq, &left, &right).unwrap();
        prop_assert_eq!(bytes.len(), wire::encoded_len(&key, width, height));
        let mut pool = BufferPool::new();
        let frame = wire::decode_frame(&bytes, MAX_MESSAGE_BYTES, &mut pool).unwrap();
        prop_assert_eq!(frame.key, key.as_str());
        prop_assert_eq!(frame.seq, seq);
        prop_assert_eq!(frame.left.as_slice(), left.as_slice());
        prop_assert_eq!(frame.right.as_slice(), right.as_slice());
    }

    /// Random byte-flips of a valid message never decode successfully and
    /// never panic — any flip is caught by a structural check or the CRC.
    #[test]
    fn random_corruption_never_decodes(
        at_fraction in 0.0f64..1.0,
        mask in 1u32..256,
    ) {
        let bytes = encoded("fuzz", 11, 6, 5);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let at = ((bytes.len() as f64 - 1.0) * at_fraction) as usize;
        let mut mangled = bytes;
        mangled[at] ^= u8::try_from(mask).expect("mask < 256");
        let mut pool = BufferPool::new();
        prop_assert!(wire::decode_frame(&mangled, MAX_MESSAGE_BYTES, &mut pool).is_err());
    }
}
