//! Error-path coverage for `SessionHandle` and the ingest front-end,
//! asserting the *specific* `AsvError` variant on every path.
//!
//! All admission-control tests run on zero-worker (manual-mode) schedulers:
//! nothing drains, so inbox occupancy — and therefore which path `submit`
//! takes — is fully deterministic.

use asv::ism::{IsmConfig, IsmPipeline, IsmState};
use asv::AsvError;
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_image::Image;
use asv_runtime::{Ingest, IngestConfig, Scheduler, SchedulerConfig, ShedPolicy};
use asv_stereo::block_matching::BlockMatchParams;

const WIDTH: usize = 32;
const HEIGHT: usize = 24;

fn state() -> IsmState {
    let config = IsmConfig {
        propagation_window: 2,
        refine: BlockMatchParams {
            max_disparity: 16,
            refine_radius: 2,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 16,
            occlusion_handling: false,
            ..Default::default()
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(HEIGHT, WIDTH), config.surrogate),
    )
    .state()
}

fn frame() -> (Image, Image) {
    (Image::zeros(WIDTH, HEIGHT), Image::zeros(WIDTH, HEIGHT))
}

fn manual_scheduler(capacity: usize, policy: ShedPolicy) -> Scheduler {
    Scheduler::new(
        SchedulerConfig::per_core()
            .with_workers(0)
            .with_inbox_capacity(capacity)
            .with_shed_policy(policy),
    )
}

#[test]
fn submit_after_shutdown_is_the_shutdown_variant() {
    let scheduler = manual_scheduler(2, ShedPolicy::Block);
    let handle = scheduler.add_session(state());
    let report = scheduler.join();
    assert_eq!(report.sessions.len(), 1);
    let (left, right) = frame();
    let err = handle.submit(left, right).unwrap_err();
    assert!(matches!(err, AsvError::Shutdown), "{err:?}");
    // After join the session table is gone; depth reads as zero.
    assert_eq!(handle.queue_depth(), 0);
}

#[test]
fn reject_policy_returns_saturated_naming_the_inbox() {
    let scheduler = manual_scheduler(2, ShedPolicy::Reject);
    let handle = scheduler.add_session(state());
    for expected_depth in 1..=2 {
        let (left, right) = frame();
        handle.submit(left, right).unwrap();
        assert_eq!(handle.queue_depth(), expected_depth);
    }
    let (left, right) = frame();
    let err = handle.submit(left, right).unwrap_err();
    match &err {
        AsvError::Saturated { context } => {
            assert!(context.contains("session-0 inbox"), "context: {context}");
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    // The rejected frame left the queue untouched.
    assert_eq!(handle.queue_depth(), 2);
    let report = scheduler.join();
    let t = &report.sessions[0].telemetry;
    assert_eq!(t.frames_submitted, 2);
    assert_eq!(t.frames_shed, 1);
    // Manual mode: the two queued frames are discarded at join.
    assert_eq!(t.frames_dropped, 2);
    assert_eq!(t.queue_depth.current, 0);
    assert_eq!(t.queue_depth.peak, 2);
}

#[test]
fn drop_oldest_policy_displaces_but_never_fails() {
    let scheduler = manual_scheduler(2, ShedPolicy::DropOldest);
    let handle = scheduler.add_session(state());
    for _ in 0..5 {
        let (left, right) = frame();
        handle.submit(left, right).expect("DropOldest never fails");
        assert!(handle.queue_depth() <= 2, "depth stays bounded");
    }
    assert_eq!(handle.queue_depth(), 2);
    let report = scheduler.join();
    let t = &report.sessions[0].telemetry;
    assert_eq!(t.frames_submitted, 5);
    assert_eq!(t.frames_shed, 3, "three oldest frames were displaced");
    assert_eq!(t.queue_depth.peak, 2, "the inbox never exceeded capacity");
}

#[test]
fn block_policy_still_blocks_and_loses_nothing() {
    // One real worker: the producer may momentarily block but every frame
    // must come out processed.
    let scheduler = Scheduler::new(
        SchedulerConfig::per_core()
            .with_workers(1)
            .with_inbox_capacity(1)
            .with_shed_policy(ShedPolicy::Block),
    );
    let handle = scheduler.add_session(state());
    for _ in 0..4 {
        let (left, right) = frame();
        handle.submit(left, right).unwrap();
    }
    let report = scheduler.join();
    let t = &report.sessions[0].telemetry;
    assert_eq!(t.frames_submitted, 4);
    assert_eq!(t.frames_processed, 4);
    assert_eq!(t.frames_shed, 0);
    assert_eq!(t.frames_dropped, 0);
}

#[test]
fn submit_to_a_poisoned_session_returns_the_stored_error() {
    let scheduler = Scheduler::new(
        SchedulerConfig::per_core()
            .with_workers(1)
            .with_inbox_capacity(4),
    );
    let handle = scheduler.add_session(state());
    // Mismatched dimensions poison the session.
    handle
        .submit(Image::zeros(WIDTH, HEIGHT), Image::zeros(WIDTH / 2, HEIGHT))
        .unwrap();
    let mut stored = None;
    for _ in 0..400 {
        let (left, right) = frame();
        match handle.submit(left, right) {
            Err(e) => {
                stored = Some(e);
                break;
            }
            Ok(()) => std::thread::sleep(std::time::Duration::from_millis(2)),
        }
    }
    assert!(
        matches!(stored, Some(AsvError::Stereo(_))),
        "poisoned session must return its stored kernel error, got {stored:?}"
    );
    drop(scheduler);
}

#[test]
fn ingest_rejects_over_quota_and_reports_downstream_shutdown() {
    // Downstream: a one-slot manual-mode inbox under Block policy, so the
    // forwarder parks on the second frame and the submission queue backs up
    // deterministically.
    let scheduler = manual_scheduler(1, ShedPolicy::Block);
    let sink = scheduler.add_session(state());
    let ingest = Ingest::new(
        IngestConfig::default()
            .with_forwarders(1)
            .with_queue_capacity(8)
            .with_session_quota(2)
            .with_policy(ShedPolicy::Reject),
    );
    let route = ingest.register(sink);

    // Frame 1 lands in the sink inbox; frame 2 blocks the forwarder.
    for _ in 0..2 {
        let (left, right) = frame();
        route.submit(left, right).unwrap();
    }
    // Wait until the forwarder has carried both out of the submission queue.
    for _ in 0..400 {
        if route.queued() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(route.queued(), 0, "forwarder should have drained the queue");

    // Quota is 2: two more buffer up, the third is shed with `Saturated`.
    for _ in 0..2 {
        let (left, right) = frame();
        route.submit(left, right).unwrap();
    }
    let (left, right) = frame();
    let err = route.submit(left, right).unwrap_err();
    match &err {
        AsvError::Saturated { context } => {
            assert!(context.contains("ingest queue"), "context: {context}");
        }
        other => panic!("expected Saturated, got {other:?}"),
    }

    // Shutting the scheduler down wakes the parked forwarder with
    // `Shutdown`, which poisons the route and sheds its remaining frames.
    let report = scheduler.join();
    assert_eq!(report.sessions[0].telemetry.frames_submitted, 1);
    let stats = ingest.join();
    assert_eq!(stats.routes.len(), 1);
    let r = &stats.routes[0];
    assert_eq!(r.accepted, 4, "frames 1-4 were admitted");
    assert_eq!(r.forwarded, 1, "only frame 1 reached the sink");
    assert!(
        matches!(r.error, Some(AsvError::Shutdown)),
        "route must record the downstream shutdown: {:?}",
        r.error
    );
    // Shed: the rejected 5th frame plus the two cleared on poisoning.
    assert_eq!(r.shed, 3);
    assert_eq!(stats.accepted(), 4);
    assert_eq!(stats.shed(), 3);

    // And the route keeps failing fast with the shutdown error.
    let (left, right) = frame();
    let err = route.submit(left, right).unwrap_err();
    assert!(matches!(err, AsvError::Shutdown), "{err:?}");
}

#[test]
fn queue_depth_tracks_every_transition() {
    let scheduler = manual_scheduler(3, ShedPolicy::Reject);
    let handle = scheduler.add_session(state());
    assert_eq!(handle.queue_depth(), 0);
    for depth in 1..=3 {
        let (left, right) = frame();
        handle.submit(left, right).unwrap();
        assert_eq!(handle.queue_depth(), depth);
    }
    let (left, right) = frame();
    assert!(handle.submit(left, right).is_err());
    assert_eq!(handle.queue_depth(), 3, "rejects do not change depth");
    let report = scheduler.join();
    assert_eq!(report.sessions[0].telemetry.queue_depth.peak, 3);
    assert_eq!(handle.queue_depth(), 0, "post-join depth reads zero");
}

#[test]
fn tripped_shard_returns_shard_down_with_the_frames_attached() {
    let scheduler = manual_scheduler(4, ShedPolicy::Block);
    let handle = scheduler.add_session(state());
    scheduler.trip("watchdog: worker heartbeat lost");

    let (left, right) = frame();
    let (err, left, right) = handle.submit_recoverable(left, right).unwrap_err();
    match &err {
        AsvError::ShardDown { context } => {
            assert!(context.contains("heartbeat"), "context: {context}");
        }
        other => panic!("expected ShardDown, got {other:?}"),
    }
    // The planes come back intact, ready for re-submission on a survivor.
    assert_eq!((left.width(), left.height()), (WIDTH, HEIGHT));
    assert_eq!((right.width(), right.height()), (WIDTH, HEIGHT));

    // The plain entry point maps to the same variant.
    let (left, right) = frame();
    let err = handle.submit(left, right).unwrap_err();
    assert!(matches!(err, AsvError::ShardDown { .. }), "{err:?}");

    let report = scheduler.join();
    let t = &report.sessions[0].telemetry;
    assert_eq!(t.frames_dropped, 2, "both refused frames were counted");
}

#[test]
fn torn_down_route_counts_discarded_frames_and_hands_them_back() {
    // One-slot manual inbox under Block: frame 1 fills it, frame 2 parks
    // the forwarder, so the scheduler shutdown deterministically poisons
    // the route.
    let scheduler = manual_scheduler(1, ShedPolicy::Block);
    let sink = scheduler.add_session(state());
    let ingest = Ingest::new(
        IngestConfig::default()
            .with_forwarders(1)
            .with_queue_capacity(16)
            .with_session_quota(16)
            .with_policy(ShedPolicy::Reject),
    );
    let route = ingest.register(sink);
    for _ in 0..2 {
        let (left, right) = frame();
        route.submit(left, right).unwrap();
    }
    for _ in 0..400 {
        if route.queued() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(route.queued(), 0, "forwarder should have drained the queue");

    // Shutting the scheduler down wakes the parked forwarder with
    // `Shutdown`, which poisons the route; every refused submit from here
    // counts into `discarded` and returns the frame to the caller.
    let report = scheduler.join();
    assert_eq!(report.sessions[0].telemetry.frames_submitted, 1);
    let mut refused = 0u64;
    for _ in 0..400 {
        let (left, right) = frame();
        match route.submit_recoverable(left, right) {
            Ok(()) => std::thread::sleep(std::time::Duration::from_millis(2)),
            Err((err, left, right)) => {
                refused += 1;
                assert!(matches!(err, AsvError::Shutdown), "{err:?}");
                assert_eq!((left.width(), left.height()), (WIDTH, HEIGHT));
                assert_eq!((right.width(), right.height()), (WIDTH, HEIGHT));
                break;
            }
        }
    }
    assert_eq!(refused, 1, "the route must eventually refuse");
    // Two more refusals through both entry points.
    let (left, right) = frame();
    assert!(route.submit_recoverable(left, right).is_err());
    let (left, right) = frame();
    assert!(matches!(
        route.submit(left, right).unwrap_err(),
        AsvError::Shutdown
    ));

    let stats = ingest.join();
    assert_eq!(stats.routes.len(), 1);
    assert_eq!(
        stats.routes[0].discarded, 3,
        "every post-teardown submit was counted"
    );
    assert_eq!(stats.discarded(), 3);
    assert!(
        matches!(stats.routes[0].error, Some(AsvError::Shutdown)),
        "{:?}",
        stats.routes[0].error
    );
}
