//! Property tests of `LatencyHistogram` and zero-count edge-case audits of
//! the whole telemetry layer.
//!
//! Locked properties:
//! * `quantile_us` is monotone in `q` and always inside `[min_us, max_us]`;
//! * `merge(a, b)` is exactly equivalent to recording every sample into one
//!   histogram: same count/min/max, bit-identical mean (the sum is tracked
//!   exactly, not per-bucket), exact p50/p95/p99 match;
//! * no telemetry accessor panics or returns NaN/inf on empty state.

use asv::FrameKind;
use asv_runtime::{AggregateTelemetry, LatencyHistogram, SessionTelemetry};
use proptest::prelude::*;
use std::time::Duration;

fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &us in samples {
        h.record(Duration::from_micros(us));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_is_monotone_in_q(
        samples in collection::vec(0u64..5_000_000, 1..=64),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = histogram_of(&samples);
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        prop_assert!(
            h.quantile_us(lo) <= h.quantile_us(hi),
            "quantile({lo}) = {} > quantile({hi}) = {}",
            h.quantile_us(lo),
            h.quantile_us(hi)
        );
    }

    #[test]
    fn quantile_is_bounded_by_observed_extremes(
        samples in collection::vec(0u64..5_000_000, 1..=64),
        q in 0.0f64..1.0,
    ) {
        let h = histogram_of(&samples);
        for q in [0.0, q, 1.0] {
            let v = h.quantile_us(q);
            prop_assert!(
                v >= h.min_us() && v <= h.max_us(),
                "quantile({q}) = {v} outside [{}, {}]",
                h.min_us(),
                h.max_us()
            );
        }
    }

    /// The endpoints are exact, not bucket approximations: q = 0 is the
    /// recorded minimum and q = 1 the recorded maximum (both are tracked
    /// outside the buckets), including clamped out-of-range arguments.
    #[test]
    fn quantile_endpoints_are_exact_extremes(
        samples in collection::vec(0u64..5_000_000, 1..=64),
    ) {
        let h = histogram_of(&samples);
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert_eq!(h.min_us(), min);
        prop_assert_eq!(h.max_us(), max);
        for q in [0.0, -1.0, f64::MIN] {
            prop_assert_eq!(h.quantile_us(q), min, "quantile({}) != min", q);
        }
        for q in [1.0, 2.0, f64::MAX] {
            prop_assert_eq!(h.quantile_us(q), max, "quantile({}) != max", q);
        }
    }

    #[test]
    fn merge_is_equivalent_to_recording_all_samples(
        a in collection::vec(0u64..2_000_000, 0..=48),
        b in collection::vec(0u64..2_000_000, 0..=48),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let whole = histogram_of(&all);

        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min_us(), whole.min_us());
        prop_assert_eq!(merged.max_us(), whole.max_us());
        prop_assert_eq!(merged.sum_us(), whole.sum_us());
        // The sum is tracked exactly, so the mean matches to the bit — well
        // within the histogram's bucket error.
        prop_assert!((merged.mean_us() - whole.mean_us()).abs() < 1e-9);
        // Identical bucket contents mean identical quantile answers.
        prop_assert_eq!(merged.p50_us(), whole.p50_us());
        prop_assert_eq!(merged.p95_us(), whole.p95_us());
        prop_assert_eq!(merged.p99_us(), whole.p99_us());
        let buckets_merged: Vec<(u64, u64)> = merged.buckets().collect();
        let buckets_whole: Vec<(u64, u64)> = whole.buckets().collect();
        prop_assert_eq!(buckets_merged, buckets_whole);
    }

    #[test]
    fn merge_with_empty_is_identity(samples in collection::vec(0u64..2_000_000, 1..=32)) {
        let reference = histogram_of(&samples);
        let mut merged = histogram_of(&samples);
        merged.merge(&LatencyHistogram::new());
        prop_assert_eq!(merged.count(), reference.count());
        prop_assert_eq!(merged.min_us(), reference.min_us());
        prop_assert_eq!(merged.max_us(), reference.max_us());
        prop_assert_eq!(merged.p50_us(), reference.p50_us());

        let mut other_way = LatencyHistogram::new();
        other_way.merge(&reference);
        prop_assert_eq!(other_way.count(), reference.count());
        prop_assert_eq!(other_way.min_us(), reference.min_us());
        prop_assert_eq!(other_way.max_us(), reference.max_us());
        prop_assert_eq!(other_way.p95_us(), reference.p95_us());
    }
}

// ---- Zero-count edge-case audit ------------------------------------------

/// Every accessor of an empty histogram must return a finite zero, not
/// panic, NaN or infinity.
#[test]
fn empty_histogram_is_all_finite_zeros() {
    let h = LatencyHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum_us(), 0);
    assert_eq!(h.min_us(), 0);
    assert_eq!(h.max_us(), 0);
    assert!(h.mean_us() == 0.0 && h.mean_us().is_finite());
    for q in [0.0, 0.5, 0.95, 0.99, 1.0, -3.0, 7.0, f64::NAN] {
        assert_eq!(h.quantile_us(q), 0, "quantile({q}) on empty");
    }
    assert_eq!(h.p50_us(), 0);
    assert_eq!(h.p95_us(), 0);
    assert_eq!(h.p99_us(), 0);
    assert!(h.buckets().all(|(_, count)| count == 0));
}

/// Out-of-range and NaN quantile arguments on a *non-empty* histogram are
/// clamped into the observed range rather than panicking.
#[test]
fn degenerate_quantile_arguments_are_clamped() {
    let h = histogram_of(&[100, 200, 300]);
    for q in [-1.0, 0.0, 1.0, 2.0, f64::NAN] {
        let v = h.quantile_us(q);
        assert!(
            (h.min_us()..=h.max_us()).contains(&v),
            "quantile({q}) = {v} escaped [{}, {}]",
            h.min_us(),
            h.max_us()
        );
    }
}

#[test]
fn empty_session_telemetry_is_all_finite_zeros() {
    let t = SessionTelemetry::default();
    assert_eq!(t.frames_processed, 0);
    assert!(t.key_frame_ratio() == 0.0 && t.key_frame_ratio().is_finite());
    assert_eq!(t.service_latency.count(), 0);
    assert_eq!(t.queue_wait.count(), 0);
    assert_eq!(t.queue_depth.current, 0);
    assert_eq!(t.queue_depth.peak, 0);
}

#[test]
fn empty_aggregate_telemetry_is_all_finite_zeros() {
    let a = AggregateTelemetry::default();
    assert!(a.frames_per_second() == 0.0 && a.frames_per_second().is_finite());
    assert!(a.key_frame_ratio() == 0.0 && a.key_frame_ratio().is_finite());
    assert_eq!(a.service_latency.p99_us(), 0);

    // Zero wall time with processed frames must not divide by zero.
    let mut with_frames = AggregateTelemetry::default();
    let mut s = SessionTelemetry::default();
    s.record_frame(
        FrameKind::KeyFrame,
        Duration::from_micros(10),
        Duration::from_micros(1),
    );
    with_frames.absorb(&s);
    assert_eq!(with_frames.wall_seconds, 0.0);
    assert!(with_frames.frames_per_second().is_finite());
    assert_eq!(with_frames.frames_per_second(), 0.0);
}

#[test]
fn merging_empty_aggregates_stays_finite_and_empty() {
    let mut a = AggregateTelemetry::default();
    a.merge(&AggregateTelemetry::default());
    assert_eq!(a.sessions, 0);
    assert_eq!(a.frames_processed, 0);
    assert!(a.frames_per_second().is_finite());
    assert_eq!(a.service_latency.min_us(), 0);

    // Empty-into-full must not corrupt the extremes.
    let mut s = SessionTelemetry::default();
    s.record_frame(
        FrameKind::NonKeyFrame,
        Duration::from_micros(500),
        Duration::from_micros(20),
    );
    let mut full = AggregateTelemetry::default();
    full.absorb(&s);
    full.merge(&AggregateTelemetry::default());
    assert_eq!(full.service_latency.min_us(), 500);
    assert_eq!(full.service_latency.max_us(), 500);
    assert_eq!(full.frames_processed, 1);
}
