//! The deconvolution-to-convolution transformation and its reference.
//!
//! [`paper_deconv2d`] / [`paper_deconv3d`] implement the *standard*
//! deconvolution exactly as Fig. 6 of the paper draws it: zero-insertion
//! upsampling with a surrounding zero ring, followed by a dense
//! cross-correlation with the kernel.  [`transformed_deconv2d`] /
//! [`transformed_deconv3d`] compute the same result as `2^N` dense
//! sub-convolutions of the *original* (small) ifmap followed by a gather, the
//! form that maps efficiently onto a systolic-array accelerator.

use crate::decompose::{decompose_kernel2d, decompose_kernel3d};
use asv_tensor::conv::{conv2d, conv3d, Conv2dParams, Conv3dParams};
use asv_tensor::{Shape4, Shape5, Tensor4, Tensor5, TensorError};

/// Result alias matching `asv-tensor`'s error type.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Upsamples an ifmap with interleaved zeros *and* a surrounding zero ring:
/// element `(i, j)` moves to `(2i + 1, 2j + 1)` of a `(2H+1)×(2W+1)` map
/// (a 3×3 ifmap becomes 7×7, as in Fig. 6).
pub fn upsample_with_ring2d(input: &Tensor4) -> Tensor4 {
    let sh = input.shape();
    let mut out = Tensor4::zeros(Shape4::new(sh.n, sh.c, 2 * sh.h + 1, 2 * sh.w + 1));
    for n in 0..sh.n {
        for c in 0..sh.c {
            for h in 0..sh.h {
                for w in 0..sh.w {
                    out.set(n, c, 2 * h + 1, 2 * w + 1, input.at(n, c, h, w));
                }
            }
        }
    }
    out
}

/// 3-D analogue of [`upsample_with_ring2d`].
pub fn upsample_with_ring3d(input: &Tensor5) -> Tensor5 {
    let sh = input.shape();
    let mut out = Tensor5::zeros(Shape5::new(
        sh.n,
        sh.c,
        2 * sh.d + 1,
        2 * sh.h + 1,
        2 * sh.w + 1,
    ));
    for n in 0..sh.n {
        for c in 0..sh.c {
            for d in 0..sh.d {
                for h in 0..sh.h {
                    for w in 0..sh.w {
                        out.set(
                            n,
                            c,
                            2 * d + 1,
                            2 * h + 1,
                            2 * w + 1,
                            input.at(n, c, d, h, w),
                        );
                    }
                }
            }
        }
    }
    out
}

/// Swaps a kernel from `Co×Ci×KH×KW` to `Ci×Co×KH×KW` layout and flips it
/// spatially — the mapping between the paper's deconvolution convention and
/// the deep-learning-framework (`conv_transpose`) convention implemented in
/// `asv_tensor::deconv`.
pub fn flip_kernel2d(kernel: &Tensor4) -> Tensor4 {
    let sh = kernel.shape();
    Tensor4::from_fn(Shape4::new(sh.c, sh.n, sh.h, sh.w), |ci, co, ky, kx| {
        kernel.at(co, ci, sh.h - 1 - ky, sh.w - 1 - kx)
    })
}

fn check_channels(in_c: usize, kernel_in_c: usize, what: &str) -> Result<()> {
    if in_c != kernel_in_c {
        return Err(TensorError::shape_mismatch(format!(
            "{what}: ifmap channels {in_c} vs kernel input channels {kernel_in_c}"
        )));
    }
    Ok(())
}

fn crop_output(full: usize, crop: usize, what: &str) -> Result<usize> {
    full.checked_sub(2 * crop)
        .filter(|&v| v > 0)
        .ok_or_else(|| {
            TensorError::invalid_parameter(format!("{what}: crop {crop} larger than output {full}"))
        })
}

/// Standard stride-2 deconvolution in the paper's convention: upsample with
/// zeros (plus ring), correlate with the kernel, then crop `crop` pixels from
/// every border.
///
/// `kernel` is laid out `Co×Ci×KH×KW`; the output has `Co` channels and
/// spatial size `2·in + 2 − k − 2·crop` per dimension.
///
/// # Errors
///
/// Returns an error when channel counts disagree, when the kernel does not
/// fit the upsampled ifmap, or when `crop` consumes the whole output.
pub fn paper_deconv2d(input: &Tensor4, kernel: &Tensor4, crop: usize) -> Result<Tensor4> {
    let ish = input.shape();
    let ksh = kernel.shape();
    check_channels(ish.c, ksh.c, "paper_deconv2d")?;
    let full_h = (2 * ish.h + 2).checked_sub(ksh.h).ok_or_else(|| {
        TensorError::shape_mismatch("paper_deconv2d: kernel taller than upsampled ifmap")
    })?;
    let full_w = (2 * ish.w + 2).checked_sub(ksh.w).ok_or_else(|| {
        TensorError::shape_mismatch("paper_deconv2d: kernel wider than upsampled ifmap")
    })?;
    let out_h = crop_output(full_h, crop, "paper_deconv2d")?;
    let out_w = crop_output(full_w, crop, "paper_deconv2d")?;

    let upsampled = upsample_with_ring2d(input);
    let full = conv2d(
        &upsampled,
        kernel,
        &Conv2dParams {
            stride: 1,
            padding: 0,
        },
    )?;
    debug_assert_eq!(full.shape().h, full_h);
    debug_assert_eq!(full.shape().w, full_w);
    Ok(Tensor4::from_fn(
        Shape4::new(ish.n, ksh.n, out_h, out_w),
        |n, c, h, w| full.at(n, c, h + crop, w + crop),
    ))
}

/// 3-D analogue of [`paper_deconv2d`] (`kernel` laid out `Co×Ci×KD×KH×KW`).
///
/// # Errors
///
/// Same error conditions as [`paper_deconv2d`].
pub fn paper_deconv3d(input: &Tensor5, kernel: &Tensor5, crop: usize) -> Result<Tensor5> {
    let ish = input.shape();
    let ksh = kernel.shape();
    check_channels(ish.c, ksh.c, "paper_deconv3d")?;
    let full_d = (2 * ish.d + 2).checked_sub(ksh.d).ok_or_else(|| {
        TensorError::shape_mismatch("paper_deconv3d: kernel deeper than upsampled ifmap")
    })?;
    let full_h = (2 * ish.h + 2).checked_sub(ksh.h).ok_or_else(|| {
        TensorError::shape_mismatch("paper_deconv3d: kernel taller than upsampled ifmap")
    })?;
    let full_w = (2 * ish.w + 2).checked_sub(ksh.w).ok_or_else(|| {
        TensorError::shape_mismatch("paper_deconv3d: kernel wider than upsampled ifmap")
    })?;
    let out_d = crop_output(full_d, crop, "paper_deconv3d")?;
    let out_h = crop_output(full_h, crop, "paper_deconv3d")?;
    let out_w = crop_output(full_w, crop, "paper_deconv3d")?;

    let upsampled = upsample_with_ring3d(input);
    let full = conv3d(
        &upsampled,
        kernel,
        &Conv3dParams {
            stride: 1,
            padding: 0,
        },
    )?;
    Ok(Tensor5::from_fn(
        Shape5::new(ish.n, ksh.n, out_d, out_h, out_w),
        |n, c, d, h, w| full.at(n, c, d + crop, h + crop, w + crop),
    ))
}

/// Number of output positions of parity `p` along one dimension, for input
/// size `input`, kernel size `kernel` (full output size `2·input + 2 −
/// kernel`).
fn parity_count(input: usize, kernel: usize, p: usize) -> usize {
    let full = 2 * input + 2 - kernel; // guaranteed ≥ 1 by callers
                                       // Positions o = 2m + p with o < full.
    if full > p {
        (full - p).div_ceil(2)
    } else {
        0
    }
}

/// The transformed stride-2 deconvolution of Sec. 4.1: four dense
/// sub-convolutions of the original ifmap followed by a parity gather,
/// numerically identical to [`paper_deconv2d`].
///
/// # Errors
///
/// Same error conditions as [`paper_deconv2d`].
pub fn transformed_deconv2d(input: &Tensor4, kernel: &Tensor4, crop: usize) -> Result<Tensor4> {
    let ish = input.shape();
    let ksh = kernel.shape();
    check_channels(ish.c, ksh.c, "transformed_deconv2d")?;
    let full_h = (2 * ish.h + 2).checked_sub(ksh.h).ok_or_else(|| {
        TensorError::shape_mismatch("transformed_deconv2d: kernel taller than upsampled ifmap")
    })?;
    let full_w = (2 * ish.w + 2).checked_sub(ksh.w).ok_or_else(|| {
        TensorError::shape_mismatch("transformed_deconv2d: kernel wider than upsampled ifmap")
    })?;
    let out_h = crop_output(full_h, crop, "transformed_deconv2d")?;
    let out_w = crop_output(full_w, crop, "transformed_deconv2d")?;

    let grid = decompose_kernel2d(kernel)?;
    let mut full = Tensor4::zeros(Shape4::new(ish.n, ksh.n, full_h, full_w));

    // Each output parity class (p_y, p_x) is produced by one dense
    // sub-convolution with the sub-kernel of parity δ = 1 − p.
    for py in 0..2usize {
        for px in 0..2usize {
            let dy = 1 - py;
            let dx = 1 - px;
            let sub = grid.get(dy, dx);
            let ssh = sub.shape();
            if ssh.h == 0 || ssh.w == 0 {
                continue;
            }
            let rows = parity_count(ish.h, ksh.h, py);
            let cols = parity_count(ish.w, ksh.w, px);
            for n in 0..ish.n {
                for oc in 0..ksh.n {
                    for m in 0..rows {
                        for c in 0..cols {
                            let mut acc = 0.0f32;
                            for ic in 0..ish.c {
                                for q in 0..ssh.h {
                                    let iy = m + q;
                                    if iy >= ish.h {
                                        continue;
                                    }
                                    for r in 0..ssh.w {
                                        let ix = c + r;
                                        if ix >= ish.w {
                                            continue;
                                        }
                                        acc += input.at(n, ic, iy, ix) * sub.at(oc, ic, q, r);
                                    }
                                }
                            }
                            full.set(n, oc, 2 * m + py, 2 * c + px, acc);
                        }
                    }
                }
            }
        }
    }

    Ok(Tensor4::from_fn(
        Shape4::new(ish.n, ksh.n, out_h, out_w),
        |n, c, h, w| full.at(n, c, h + crop, w + crop),
    ))
}

/// 3-D analogue of [`transformed_deconv2d`]: eight dense sub-convolutions
/// plus gather, numerically identical to [`paper_deconv3d`].
///
/// # Errors
///
/// Same error conditions as [`paper_deconv3d`].
pub fn transformed_deconv3d(input: &Tensor5, kernel: &Tensor5, crop: usize) -> Result<Tensor5> {
    let ish = input.shape();
    let ksh = kernel.shape();
    check_channels(ish.c, ksh.c, "transformed_deconv3d")?;
    let full_d = (2 * ish.d + 2).checked_sub(ksh.d).ok_or_else(|| {
        TensorError::shape_mismatch("transformed_deconv3d: kernel deeper than upsampled ifmap")
    })?;
    let full_h = (2 * ish.h + 2).checked_sub(ksh.h).ok_or_else(|| {
        TensorError::shape_mismatch("transformed_deconv3d: kernel taller than upsampled ifmap")
    })?;
    let full_w = (2 * ish.w + 2).checked_sub(ksh.w).ok_or_else(|| {
        TensorError::shape_mismatch("transformed_deconv3d: kernel wider than upsampled ifmap")
    })?;
    let out_d = crop_output(full_d, crop, "transformed_deconv3d")?;
    let out_h = crop_output(full_h, crop, "transformed_deconv3d")?;
    let out_w = crop_output(full_w, crop, "transformed_deconv3d")?;

    let grid = decompose_kernel3d(kernel)?;
    let mut full = Tensor5::zeros(Shape5::new(ish.n, ksh.n, full_d, full_h, full_w));

    for pz in 0..2usize {
        for py in 0..2usize {
            for px in 0..2usize {
                let sub = grid.get(1 - pz, 1 - py, 1 - px);
                let ssh = sub.shape();
                if ssh.d == 0 || ssh.h == 0 || ssh.w == 0 {
                    continue;
                }
                let deps = parity_count(ish.d, ksh.d, pz);
                let rows = parity_count(ish.h, ksh.h, py);
                let cols = parity_count(ish.w, ksh.w, px);
                for n in 0..ish.n {
                    for oc in 0..ksh.n {
                        for zd in 0..deps {
                            for m in 0..rows {
                                for c in 0..cols {
                                    let mut acc = 0.0f32;
                                    for ic in 0..ish.c {
                                        for s in 0..ssh.d {
                                            let iz = zd + s;
                                            if iz >= ish.d {
                                                continue;
                                            }
                                            for q in 0..ssh.h {
                                                let iy = m + q;
                                                if iy >= ish.h {
                                                    continue;
                                                }
                                                for r in 0..ssh.w {
                                                    let ix = c + r;
                                                    if ix >= ish.w {
                                                        continue;
                                                    }
                                                    acc += input.at(n, ic, iz, iy, ix)
                                                        * sub.at(oc, ic, s, q, r);
                                                }
                                            }
                                        }
                                    }
                                    full.set(n, oc, 2 * zd + pz, 2 * m + py, 2 * c + px, acc);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    Ok(Tensor5::from_fn(
        Shape5::new(ish.n, ksh.n, out_d, out_h, out_w),
        |n, c, d, h, w| full.at(n, c, d + crop, h + crop, w + crop),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_tensor::deconv::{deconv2d_scatter, DeconvParams};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn upsample_with_ring_matches_figure6() {
        let input = Tensor4::filled(Shape4::new(1, 1, 3, 3), 1.0);
        let up = upsample_with_ring2d(&input);
        assert_eq!(up.shape(), Shape4::new(1, 1, 7, 7));
        assert_eq!(up.sum(), 9.0);
        assert_eq!(up.at(0, 0, 1, 1), 1.0);
        assert_eq!(up.at(0, 0, 0, 0), 0.0);
        assert_eq!(up.at(0, 0, 6, 6), 0.0);
    }

    #[test]
    fn figure6_output_patterns() {
        // Kernel [a..i] = 1..9 and an impulse ifmap with only A non-zero.
        // Fig. 6 gives (1,1) = A·e, (1,2) = A·d + B·f, (2,1) = A·b + D·h and
        // (2,2) = A·a + B·c + D·g + E·i; with B = D = E = 0 these reduce to
        // A·e, A·d, A·b and A·a.
        let mut input = Tensor4::zeros(Shape4::new(1, 1, 3, 3));
        input.set(0, 0, 0, 0, 1.0);
        let kernel = Tensor4::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w + 1) as f32);
        let out = paper_deconv2d(&input, &kernel, 0).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 5, 5));
        assert_eq!(out.at(0, 0, 0, 0), 5.0); // (1,1) = A·e
        assert_eq!(out.at(0, 0, 0, 1), 4.0); // (1,2) = A·d + B·f = A·d
        assert_eq!(out.at(0, 0, 1, 0), 2.0); // (2,1) = A·b + D·h = A·b
        assert_eq!(out.at(0, 0, 1, 1), 1.0); // (2,2) = A·a + ... = A·a
        let transformed = transformed_deconv2d(&input, &kernel, 0).unwrap();
        assert!(out.max_abs_diff(&transformed).unwrap() < 1e-6);
    }

    #[test]
    fn transform_matches_reference_3x3() {
        let mut rng = SmallRng::seed_from_u64(42);
        let input = Tensor4::random(Shape4::new(2, 3, 5, 6), -1.0, 1.0, &mut rng);
        let kernel = Tensor4::random(Shape4::new(4, 3, 3, 3), -1.0, 1.0, &mut rng);
        for crop in 0..2 {
            let reference = paper_deconv2d(&input, &kernel, crop).unwrap();
            let transformed = transformed_deconv2d(&input, &kernel, crop).unwrap();
            assert_eq!(reference.shape(), transformed.shape());
            assert!(
                reference.max_abs_diff(&transformed).unwrap() < 1e-4,
                "crop {crop}"
            );
        }
    }

    #[test]
    fn transform_matches_reference_4x4() {
        let mut rng = SmallRng::seed_from_u64(43);
        let input = Tensor4::random(Shape4::new(1, 2, 4, 7), -1.0, 1.0, &mut rng);
        let kernel = Tensor4::random(Shape4::new(3, 2, 4, 4), -1.0, 1.0, &mut rng);
        let reference = paper_deconv2d(&input, &kernel, 1).unwrap();
        let transformed = transformed_deconv2d(&input, &kernel, 1).unwrap();
        assert!(reference.max_abs_diff(&transformed).unwrap() < 1e-4);
    }

    #[test]
    fn transform_handles_non_square_kernels() {
        let mut rng = SmallRng::seed_from_u64(44);
        let input = Tensor4::random(Shape4::new(1, 1, 4, 4), -1.0, 1.0, &mut rng);
        for (kh, kw) in [(1, 3), (2, 5), (5, 2), (1, 1)] {
            let kernel = Tensor4::random(Shape4::new(2, 1, kh, kw), -1.0, 1.0, &mut rng);
            let reference = paper_deconv2d(&input, &kernel, 0).unwrap();
            let transformed = transformed_deconv2d(&input, &kernel, 0).unwrap();
            assert!(
                reference.max_abs_diff(&transformed).unwrap() < 1e-4,
                "kernel {kh}x{kw}"
            );
        }
    }

    #[test]
    fn paper_convention_equals_framework_scatter_with_flipped_kernel() {
        // paper_deconv(I, K) == conv_transpose(I, flip(K)) with stride 2 and
        // padding (k − 2); this pins down the convention relationship.
        let mut rng = SmallRng::seed_from_u64(45);
        let input = Tensor4::random(Shape4::new(1, 2, 4, 5), -1.0, 1.0, &mut rng);
        for k in [3usize, 4] {
            let kernel = Tensor4::random(Shape4::new(3, 2, k, k), -1.0, 1.0, &mut rng);
            let paper = paper_deconv2d(&input, &kernel, 0).unwrap();
            let framework = deconv2d_scatter(
                &input,
                &flip_kernel2d(&kernel),
                &DeconvParams {
                    stride: 2,
                    padding: k - 2,
                },
            )
            .unwrap();
            assert_eq!(paper.shape(), framework.shape());
            assert!(
                paper.max_abs_diff(&framework).unwrap() < 1e-4,
                "kernel {k}x{k}"
            );
        }
    }

    #[test]
    fn transform_errors_mirror_reference_errors() {
        let input = Tensor4::zeros(Shape4::new(1, 2, 3, 3));
        let wrong_channels = Tensor4::zeros(Shape4::new(1, 3, 3, 3));
        assert!(paper_deconv2d(&input, &wrong_channels, 0).is_err());
        assert!(transformed_deconv2d(&input, &wrong_channels, 0).is_err());
        let kernel = Tensor4::zeros(Shape4::new(1, 2, 3, 3));
        // Crop so large the output disappears.
        assert!(paper_deconv2d(&input, &kernel, 10).is_err());
        assert!(transformed_deconv2d(&input, &kernel, 10).is_err());
    }

    #[test]
    fn transform_matches_reference_3d() {
        let mut rng = SmallRng::seed_from_u64(46);
        let input = Tensor5::random(Shape5::new(1, 2, 3, 3, 4), -1.0, 1.0, &mut rng);
        let kernel = Tensor5::random(Shape5::new(2, 2, 3, 3, 3), -1.0, 1.0, &mut rng);
        for crop in 0..2 {
            let reference = paper_deconv3d(&input, &kernel, crop).unwrap();
            let transformed = transformed_deconv3d(&input, &kernel, crop).unwrap();
            assert_eq!(reference.shape(), transformed.shape());
            assert!(
                reference.max_abs_diff(&transformed).unwrap() < 1e-4,
                "crop {crop}"
            );
        }
    }

    #[test]
    fn transformed_3d_errors_on_bad_inputs() {
        let input = Tensor5::zeros(Shape5::new(1, 2, 2, 2, 2));
        let wrong = Tensor5::zeros(Shape5::new(1, 3, 3, 3, 3));
        assert!(transformed_deconv3d(&input, &wrong, 0).is_err());
        assert!(paper_deconv3d(&input, &wrong, 0).is_err());
    }

    #[test]
    fn parity_counts_cover_full_output() {
        for input in 1..6usize {
            for kernel in 1..=5usize {
                if kernel > 2 * input + 1 {
                    continue;
                }
                let full = 2 * input + 2 - kernel;
                assert_eq!(
                    parity_count(input, kernel, 0) + parity_count(input, kernel, 1),
                    full,
                    "input {input} kernel {kernel}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The transformed deconvolution equals the reference deconvolution
        /// for arbitrary small shapes, channel counts and crops.
        #[test]
        fn transform_equivalence_2d(
            h in 1usize..5,
            w in 1usize..5,
            kh in 1usize..5,
            kw in 1usize..5,
            ci in 1usize..3,
            co in 1usize..3,
            crop in 0usize..2,
            seed in 0u64..1000,
        ) {
            prop_assume!(kh <= 2 * h + 1 && kw <= 2 * w + 1);
            let full_h = 2 * h + 2 - kh;
            let full_w = 2 * w + 2 - kw;
            prop_assume!(full_h > 2 * crop && full_w > 2 * crop);
            let mut rng = SmallRng::seed_from_u64(seed);
            let input = Tensor4::random(Shape4::new(1, ci, h, w), -1.0, 1.0, &mut rng);
            let kernel = Tensor4::random(Shape4::new(co, ci, kh, kw), -1.0, 1.0, &mut rng);
            let reference = paper_deconv2d(&input, &kernel, crop).unwrap();
            let transformed = transformed_deconv2d(&input, &kernel, crop).unwrap();
            prop_assert!(reference.max_abs_diff(&transformed).unwrap() < 1e-4);
        }

        /// 3-D equivalence on small shapes.
        #[test]
        fn transform_equivalence_3d(
            d in 1usize..3,
            h in 1usize..3,
            w in 1usize..3,
            k in 1usize..4,
            seed in 0u64..1000,
        ) {
            prop_assume!(k <= 2 * d + 1 && k <= 2 * h + 1 && k <= 2 * w + 1);
            let mut rng = SmallRng::seed_from_u64(seed);
            let input = Tensor5::random(Shape5::new(1, 2, d, h, w), -1.0, 1.0, &mut rng);
            let kernel = Tensor5::random(Shape5::new(2, 2, k, k, k), -1.0, 1.0, &mut rng);
            let reference = paper_deconv3d(&input, &kernel, 0).unwrap();
            let transformed = transformed_deconv3d(&input, &kernel, 0).unwrap();
            prop_assert!(reference.max_abs_diff(&transformed).unwrap() < 1e-4);
        }
    }
}
