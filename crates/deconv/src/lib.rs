//! Software deconvolution transformation (Sec. 4.1 and Appendix A of the ASV
//! paper).
//!
//! A stride-2 deconvolution computed the standard way first upsamples its
//! ifmap with interleaved zeros and then runs a dense convolution over the
//! enlarged map; in 2-D three quarters of the multiply-accumulates then have a
//! zero operand (seven eighths in 3-D).  The ASV observation is that the
//! non-zero work decomposes *exactly* into `2^N` dense convolutions of the
//! original ifmap with `2^N` sub-kernels extracted from the original kernel by
//! index parity, followed by a gather that interleaves the partial outputs.
//! Dense convolutions are what systolic-array DNN accelerators are built for,
//! so the transformation removes the sparsity without any hardware support —
//! and because every sub-convolution reads the *same* ifmap, it exposes the
//! inter-layer activation reuse (ILAR) that the `asv-dataflow` crate
//! schedules for.
//!
//! This crate provides:
//!
//! * [`decompose`] — sub-kernel extraction for 2-D and 3-D kernels, plus the
//!   general N-dimensional index formula of Appendix A.
//! * [`transform`] — the transformed deconvolution itself (sub-convolutions +
//!   gather), equivalence-tested against two independent reference
//!   implementations.
//!
//! # Convention
//!
//! The transform follows the paper's formulation of deconvolution: the ifmap
//! is zero-upsampled *with a surrounding zero ring* (a 3×3 ifmap becomes 7×7
//! as in Fig. 6) and then cross-correlated with the kernel as stored.
//! Deep-learning frameworks use the spatially flipped kernel instead; the two
//! conventions are related by [`transform::flip_kernel2d`] and the
//! equivalence is covered by tests.
//!
//! # Example
//!
//! ```
//! use asv_tensor::{Tensor4, Shape4};
//! use asv_deconv::transform::{paper_deconv2d, transformed_deconv2d};
//!
//! let ifmap = Tensor4::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w) as f32);
//! let kernel = Tensor4::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w + 1) as f32);
//! let reference = paper_deconv2d(&ifmap, &kernel, 0).unwrap();
//! let transformed = transformed_deconv2d(&ifmap, &kernel, 0).unwrap();
//! assert!(reference.max_abs_diff(&transformed).unwrap() < 1e-5);
//! ```

pub mod decompose;
pub mod transform;

pub use decompose::{decompose_kernel2d, decompose_kernel3d, sub_kernel_shapes, SubKernelGrid2d};
pub use transform::{paper_deconv2d, paper_deconv3d, transformed_deconv2d, transformed_deconv3d};
