//! Sub-kernel decomposition (Sec. 4.1 and Appendix A).
//!
//! A kernel element at index `(k0, k1, ..., k_{N-1})` lands in the sub-kernel
//! selected by the parity of each index: sub-kernel `k` (with binary digits
//! `δ_j = (k >> j) & 1`) holds element `(i0, ..., i_{N-1})` taken from kernel
//! position `(2·i0 + δ0, ..., 2·i_{N-1} + δ_{N-1})`.  This module implements
//! that extraction for 2-D and 3-D kernels stored as `asv-tensor` tensors, and
//! exposes the shape formula for arbitrary dimensionality so the scheduling
//! code can size sub-kernels without materialising them.

use asv_tensor::{Shape4, Shape5, Tensor4, Tensor5, TensorError};

/// Result alias matching `asv-tensor`'s error type.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Shapes of the `2^dims.len()` sub-kernels produced by decomposing a kernel
/// with the given per-dimension sizes (stride-2 decomposition, Appendix A).
///
/// Sub-kernel `k` has, along dimension `j`, size
/// `floor((dims[j] - δ_j + 1) / 2)` with `δ_j = (k >> j) & 1`, i.e.
/// `ceil(dims[j] / 2)` when `δ_j = 0` and `floor(dims[j] / 2)` when
/// `δ_j = 1`.
pub fn sub_kernel_shapes(dims: &[usize]) -> Vec<Vec<usize>> {
    let n = dims.len();
    (0..(1usize << n))
        .map(|k| {
            dims.iter()
                .enumerate()
                .map(|(j, &size)| {
                    let delta = (k >> j) & 1;
                    (size + 1 - delta) / 2
                })
                .collect()
        })
        .collect()
}

/// Sub-kernel element lookup of Appendix A: the element at `coords` of
/// sub-kernel `k` comes from this index of the original kernel (one entry per
/// dimension), or `None` if the sub-kernel does not extend that far.
pub fn source_index(dims: &[usize], k: usize, coords: &[usize]) -> Option<Vec<usize>> {
    if coords.len() != dims.len() {
        return None;
    }
    let mut out = Vec::with_capacity(dims.len());
    for (j, (&size, &c)) in dims.iter().zip(coords).enumerate() {
        let delta = (k >> j) & 1;
        let idx = 2 * c + delta;
        if idx >= size {
            return None;
        }
        out.push(idx);
    }
    Some(out)
}

/// The four sub-kernels of a 2-D deconvolution kernel, indexed by the parity
/// `(δ_row, δ_col)` of the kernel elements they contain.
///
/// Each sub-kernel keeps the `Co×Ci` channel layout of the original kernel;
/// only the spatial extent shrinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SubKernelGrid2d {
    /// `kernels[δ_row][δ_col]`.
    kernels: [[Tensor4; 2]; 2],
}

impl SubKernelGrid2d {
    /// Sub-kernel with row parity `dy` and column parity `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `dy` or `dx` is not 0 or 1.
    pub fn get(&self, dy: usize, dx: usize) -> &Tensor4 {
        &self.kernels[dy][dx]
    }

    /// Iterates the four sub-kernels along with their `(δ_row, δ_col)`
    /// parities, in the paper's S0..S3 order (S0 = even/even).
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &Tensor4)> {
        [(0usize, 0usize), (1, 0), (0, 1), (1, 1)]
            .into_iter()
            .map(move |(dy, dx)| ((dy, dx), &self.kernels[dy][dx]))
    }

    /// Total number of kernel elements across all sub-kernels (must equal the
    /// element count of the original kernel).
    pub fn total_elements(&self) -> usize {
        self.iter().map(|(_, k)| k.shape().volume()).sum()
    }
}

/// Decomposes a 2-D deconvolution kernel (`Co×Ci×KH×KW`) into its four
/// sub-kernels.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for an empty kernel.
pub fn decompose_kernel2d(kernel: &Tensor4) -> Result<SubKernelGrid2d> {
    let sh = kernel.shape();
    if sh.h == 0 || sh.w == 0 || sh.n == 0 || sh.c == 0 {
        return Err(TensorError::invalid_parameter(
            "cannot decompose an empty kernel",
        ));
    }
    let build = |dy: usize, dx: usize| -> Tensor4 {
        let sub_h = (sh.h + 1 - dy) / 2;
        let sub_w = (sh.w + 1 - dx) / 2;
        Tensor4::from_fn(Shape4::new(sh.n, sh.c, sub_h, sub_w), |oc, ic, i, j| {
            kernel.at(oc, ic, 2 * i + dy, 2 * j + dx)
        })
    };
    Ok(SubKernelGrid2d {
        kernels: [[build(0, 0), build(0, 1)], [build(1, 0), build(1, 1)]],
    })
}

/// The eight sub-kernels of a 3-D deconvolution kernel, indexed by
/// `(δ_depth, δ_row, δ_col)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubKernelGrid3d {
    kernels: Vec<Tensor5>,
}

impl SubKernelGrid3d {
    /// Sub-kernel with depth/row/column parities `(dz, dy, dx)`.
    pub fn get(&self, dz: usize, dy: usize, dx: usize) -> &Tensor5 {
        &self.kernels[(dz << 2) | (dy << 1) | dx]
    }

    /// Iterates all eight sub-kernels with their parities.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize, usize), &Tensor5)> {
        self.kernels
            .iter()
            .enumerate()
            .map(|(i, k)| (((i >> 2) & 1, (i >> 1) & 1, i & 1), k))
    }

    /// Total number of kernel elements across all sub-kernels.
    pub fn total_elements(&self) -> usize {
        self.kernels.iter().map(|k| k.shape().volume()).sum()
    }
}

/// Decomposes a 3-D deconvolution kernel (`Co×Ci×KD×KH×KW`) into its eight
/// sub-kernels.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for an empty kernel.
pub fn decompose_kernel3d(kernel: &Tensor5) -> Result<SubKernelGrid3d> {
    let sh = kernel.shape();
    if sh.d == 0 || sh.h == 0 || sh.w == 0 || sh.n == 0 || sh.c == 0 {
        return Err(TensorError::invalid_parameter(
            "cannot decompose an empty kernel",
        ));
    }
    let mut kernels = Vec::with_capacity(8);
    for index in 0..8usize {
        let dz = (index >> 2) & 1;
        let dy = (index >> 1) & 1;
        let dx = index & 1;
        let sub_d = (sh.d + 1 - dz) / 2;
        let sub_h = (sh.h + 1 - dy) / 2;
        let sub_w = (sh.w + 1 - dx) / 2;
        kernels.push(Tensor5::from_fn(
            Shape5::new(sh.n, sh.c, sub_d, sub_h, sub_w),
            |oc, ic, d, i, j| kernel.at(oc, ic, 2 * d + dz, 2 * i + dy, 2 * j + dx),
        ));
    }
    Ok(SubKernelGrid3d { kernels })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_for_3x3_kernel_match_paper() {
        // Paper Sec. 4.1: a 3×3 kernel decomposes into 2×2, 1×2, 2×1 and 1×1
        // sub-kernels.
        let shapes = sub_kernel_shapes(&[3, 3]);
        assert_eq!(shapes.len(), 4);
        assert_eq!(shapes[0], vec![2, 2]); // δ = (0,0)
        assert_eq!(shapes[1], vec![1, 2]); // δ = (1,0): rows floor(3/2)=1
        assert_eq!(shapes[2], vec![2, 1]);
        assert_eq!(shapes[3], vec![1, 1]);
    }

    #[test]
    fn shapes_preserve_total_element_count() {
        for dims in [
            vec![3, 3],
            vec![4, 4],
            vec![5, 3],
            vec![3, 3, 3],
            vec![4, 4, 4],
            vec![2, 5, 7],
        ] {
            let total: usize = sub_kernel_shapes(&dims)
                .iter()
                .map(|s| s.iter().product::<usize>())
                .sum();
            let expected: usize = dims.iter().product();
            assert_eq!(total, expected, "dims {dims:?}");
        }
    }

    #[test]
    fn source_index_follows_appendix_a() {
        // For sub-kernel k with δ_j = (k >> j) & 1, element (i, j) comes from
        // kernel (2i + δ0, 2j + δ1).  Dimension order here is (row, col) with
        // bit 0 = row.
        let idx = source_index(&[3, 3], 0b00, &[1, 1]).unwrap();
        assert_eq!(idx, vec![2, 2]);
        let idx = source_index(&[3, 3], 0b01, &[0, 1]).unwrap();
        assert_eq!(idx, vec![1, 2]);
        assert!(source_index(&[3, 3], 0b01, &[1, 0]).is_none()); // row 3 out of range
        assert!(source_index(&[3, 3], 0, &[0]).is_none()); // wrong arity
    }

    #[test]
    fn decompose_3x3_extracts_named_elements() {
        // Kernel [a b c; d e f; g h i] = 1..9 row-major.
        let kernel = Tensor4::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w + 1) as f32);
        let grid = decompose_kernel2d(&kernel).unwrap();
        // S(0,0): even rows and columns → [a c; g i] = [1 3; 7 9].
        assert_eq!(grid.get(0, 0).as_slice(), &[1.0, 3.0, 7.0, 9.0]);
        // S(1,0): odd rows, even columns → [d f] = [4 6].
        assert_eq!(grid.get(1, 0).as_slice(), &[4.0, 6.0]);
        // S(0,1): even rows, odd columns → [b; h] = [2; 8].
        assert_eq!(grid.get(0, 1).as_slice(), &[2.0, 8.0]);
        // S(1,1): odd rows and columns → [e] = [5].
        assert_eq!(grid.get(1, 1).as_slice(), &[5.0]);
        assert_eq!(grid.total_elements(), 9);
    }

    #[test]
    fn decompose_4x4_covers_all_elements_once() {
        let kernel = Tensor4::from_fn(Shape4::new(2, 3, 4, 4), |oc, ic, h, w| {
            (oc * 1000 + ic * 100 + h * 10 + w) as f32
        });
        let grid = decompose_kernel2d(&kernel).unwrap();
        assert_eq!(grid.total_elements(), 2 * 3 * 16);
        // Every sub-kernel of a 4x4 kernel is 2x2.
        for (_, sub) in grid.iter() {
            assert_eq!(sub.shape().h, 2);
            assert_eq!(sub.shape().w, 2);
            assert_eq!(sub.shape().n, 2);
            assert_eq!(sub.shape().c, 3);
        }
        // Sum of all sub-kernel elements equals the sum of the original.
        let sub_sum: f64 = grid.iter().map(|(_, k)| k.sum()).sum();
        assert!((sub_sum - kernel.sum()).abs() < 1e-3);
    }

    #[test]
    fn decompose_rejects_empty_kernels() {
        let empty = Tensor4::zeros(Shape4::new(0, 1, 3, 3));
        assert!(decompose_kernel2d(&empty).is_err());
        let empty3 = Tensor5::zeros(Shape5::new(1, 1, 0, 3, 3));
        assert!(decompose_kernel3d(&empty3).is_err());
    }

    #[test]
    fn decompose_3d_produces_eight_sub_kernels() {
        let kernel = Tensor5::from_fn(Shape5::new(1, 2, 3, 3, 3), |_, ic, d, h, w| {
            (ic * 1000 + d * 100 + h * 10 + w) as f32
        });
        let grid = decompose_kernel3d(&kernel).unwrap();
        assert_eq!(grid.iter().count(), 8);
        assert_eq!(grid.total_elements(), 2 * 27);
        // δ = (0,0,0) holds the 2x2x2 even-index corner sub-kernel.
        let s0 = grid.get(0, 0, 0);
        assert_eq!(s0.shape().d, 2);
        assert_eq!(s0.at(0, 0, 1, 1, 1), (200 + 20 + 2) as f32);
        // δ = (1,1,1) holds the single centre element (1,1,1) per channel pair.
        let s7 = grid.get(1, 1, 1);
        assert_eq!((s7.shape().d, s7.shape().h, s7.shape().w), (1, 1, 1));
        assert_eq!(s7.at(0, 0, 0, 0, 0), (100 + 10 + 1) as f32);
        let s7b = grid.get(1, 1, 1);
        assert_eq!(s7b.at(0, 1, 0, 0, 0), (1000 + 100 + 10 + 1) as f32);
    }

    #[test]
    fn shapes_agree_with_materialised_decomposition() {
        let kernel = Tensor4::from_fn(Shape4::new(1, 1, 5, 4), |_, _, h, w| (h * 4 + w) as f32);
        let grid = decompose_kernel2d(&kernel).unwrap();
        let shapes = sub_kernel_shapes(&[5, 4]);
        // Order in sub_kernel_shapes: bit 0 = first dim (rows).
        assert_eq!(grid.get(0, 0).shape().h, shapes[0][0]);
        assert_eq!(grid.get(0, 0).shape().w, shapes[0][1]);
        assert_eq!(grid.get(1, 0).shape().h, shapes[1][0]);
        assert_eq!(grid.get(0, 1).shape().w, shapes[2][1]);
        assert_eq!(grid.get(1, 1).shape().h, shapes[3][0]);
    }
}
