//! Memory-reuse primitives for the streaming hot path.
//!
//! ASV's ISM algorithm wins because non-key frames are cheap; re-allocating
//! every intermediate buffer on every frame squanders that advantage on the
//! allocator.  This crate provides the two building blocks the rest of the
//! workspace uses to make steady-state frame processing allocation-free:
//!
//! * [`BufferPool`] — a size-keyed pool of `f32` plane buffers that are
//!   checked out, used as kernel scratch or frame storage, and returned.
//!   After the first frame of a stream has warmed the pool, every
//!   `take`/`put` cycle is a plain `Vec` move with no heap traffic.
//! * [`alloc_count`] — a counting wrapper around the system allocator that
//!   the allocation-regression test and the `tab_perf` benchmark install as
//!   the global allocator to *prove* the steady state performs zero heap
//!   allocations.
//!
//! Higher layers build per-session `Workspace` types on top of the pool
//! (`asv_flow::FlowWorkspace`, `asv_stereo::SgmWorkspace`,
//! `asv::Workspace`); each streaming session owns one workspace, so
//! concurrent sessions never contend on the global allocator.

/// A size-keyed pool of reusable element buffers.
///
/// Buffers are matched by *exact length*: a checkout of `len` elements is
/// served by a retained buffer of the same length, or freshly allocated on a
/// miss.  Returned buffers are retained up to [`Pool::capacity_limit`]
/// per distinct length, so a pool that momentarily handles an unusual frame
/// size cannot grow without bound.
///
/// The element type is generic so every layer pools the representation its
/// kernels actually use: `f32` planes for the SAD/flow path
/// ([`BufferPool`]), `u32`/`u64` census descriptors, `u8` Hamming costs and
/// `u16` integer-SGM aggregation rows ([`U32Pool`], [`U8Pool`],
/// [`U16Pool`], [`U64Pool`]).
#[derive(Debug)]
pub struct Pool<T> {
    free: Vec<Vec<T>>,
    capacity_limit: usize,
    hits: u64,
    misses: u64,
}

/// Pool of `f32` plane buffers (the original pool type of the workspace
/// layer).
pub type BufferPool = Pool<f32>;
/// Pool of `u8` buffers (census Hamming-cost volumes).
pub type U8Pool = Pool<u8>;
/// Pool of `u16` buffers (integer SGM aggregation planes).
pub type U16Pool = Pool<u16>;
/// Pool of `u32` buffers (5×5 census descriptors).
pub type U32Pool = Pool<u32>;
/// Pool of `u64` buffers (7×7 / 9×7 census descriptors).
pub type U64Pool = Pool<u64>;

/// Default number of buffers retained per distinct length.
pub const DEFAULT_CAPACITY_LIMIT: usize = 8;

impl<T: Copy + Default> Pool<T> {
    /// Creates an empty pool (no heap allocation happens until the first
    /// checkout misses).
    pub fn new() -> Self {
        Self::with_capacity_limit(DEFAULT_CAPACITY_LIMIT)
    }

    /// Creates an empty pool retaining at most `limit` buffers per distinct
    /// length (clamped to at least 1).
    pub fn with_capacity_limit(limit: usize) -> Self {
        Self {
            free: Vec::new(),
            capacity_limit: limit.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// The retention limit per distinct buffer length.
    pub fn capacity_limit(&self) -> usize {
        self.capacity_limit
    }

    /// Checks out a buffer of exactly `len` elements with *unspecified*
    /// contents (stale data from a previous user on a pool hit, zeros on a
    /// miss).  Use when the caller overwrites every element.
    pub fn take_scratch(&mut self, len: usize) -> Vec<T> {
        if let Some(pos) = self.free.iter().position(|b| b.len() == len) {
            self.hits += 1;
            self.free.swap_remove(pos)
        } else {
            self.misses += 1;
            vec![T::default(); len] // lint: alloc-ok(pool miss, amortized)
        }
    }

    /// Checks out a buffer of exactly `len` elements filled with the element
    /// default (`0.0` / `0`).
    pub fn take_zeroed(&mut self, len: usize) -> Vec<T> {
        let mut buf = self.take_scratch(len);
        buf.fill(T::default());
        buf
    }

    /// Returns a buffer to the pool.  Buffers beyond the per-length
    /// retention limit (and zero-length buffers) are dropped.
    pub fn put(&mut self, buf: Vec<T>) {
        if buf.is_empty() {
            return;
        }
        let same_len = self.free.iter().filter(|b| b.len() == buf.len()).count();
        if same_len < self.capacity_limit {
            self.free.push(buf);
        }
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.free.len()
    }

    /// Total bytes currently retained by the pool.
    pub fn retained_bytes(&self) -> usize {
        self.free
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<T>())
            .sum()
    }

    /// Checkouts served from retained buffers.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checkouts that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every retained buffer, releasing the pool's memory (e.g. when a
    /// session goes idle).  Hit/miss statistics are preserved.
    pub fn trim(&mut self) {
        self.free.clear();
        self.free.shrink_to_fit();
    }
}

impl<T: Copy + Default> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A counting wrapper around the system allocator.
///
/// Install it as the global allocator in a test or benchmark binary and read
/// [`alloc_count::allocations`] before/after a region to measure its heap
/// traffic.  Counting is a relaxed atomic increment, cheap enough to leave
/// always-on in the binaries that use it.
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// A `GlobalAlloc` that forwards to [`System`] and counts every
    /// allocation event (including `realloc` growth).
    #[derive(Debug, Default)]
    pub struct CountingAllocator;

    impl CountingAllocator {
        /// Creates the allocator (const, so it can be a `static`).
        pub const fn new() -> Self {
            Self
        }
    }

    // The workspace denies `unsafe_code`; a global allocator is the one
    // place that cannot be expressed without it, so the override is scoped
    // to exactly this impl.
    #[allow(unsafe_code)]
    // SAFETY: every method forwards verbatim to the system allocator; the
    // wrapper adds only relaxed atomic counter increments, which cannot
    // violate any allocator invariant.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            // SAFETY: `layout` is the caller's layout, forwarded unchanged.
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            // SAFETY: `layout` is the caller's layout, forwarded unchanged.
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `ptr`/`layout` come from a matching `alloc` on the
            // same underlying system allocator.
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            // SAFETY: `ptr`/`layout` come from a matching `alloc`, and
            // `new_size` is the caller's requested size, all forwarded.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Number of allocation events (alloc, alloc_zeroed and realloc) since
    /// process start.  Monotonic; diff two reads to measure a region.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Number of deallocation events since process start.
    pub fn deallocations() -> u64 {
        DEALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested by allocation events since process start.
    pub fn allocated_bytes() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pool_allocates_on_miss() {
        let mut pool = BufferPool::new();
        let buf = pool.take_scratch(16);
        assert_eq!(buf.len(), 16);
        assert!(buf.iter().all(|&v| v == 0.0));
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 0);
    }

    #[test]
    fn take_put_cycle_reuses_the_buffer() {
        let mut pool = BufferPool::new();
        let mut buf = pool.take_scratch(8);
        buf[3] = 7.0;
        let ptr = buf.as_ptr();
        pool.put(buf);
        let again = pool.take_scratch(8);
        assert_eq!(again.as_ptr(), ptr, "same allocation must come back");
        assert_eq!(again[3], 7.0, "scratch contents are unspecified but live");
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut pool = BufferPool::new();
        let mut buf = pool.take_scratch(8);
        buf.fill(9.0);
        pool.put(buf);
        let clean = pool.take_zeroed(8);
        assert!(clean.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lengths_are_matched_exactly() {
        let mut pool = BufferPool::new();
        pool.put(vec![1.0; 10]);
        let other = pool.take_scratch(12);
        assert_eq!(other.len(), 12);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.retained(), 1, "the 10-element buffer stays pooled");
    }

    #[test]
    fn retention_limit_caps_growth() {
        let mut pool = BufferPool::with_capacity_limit(2);
        for _ in 0..5 {
            pool.put(vec![0.0; 4]);
        }
        assert_eq!(pool.retained(), 2);
        assert_eq!(pool.retained_bytes(), 2 * 4 * 4);
        pool.trim();
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn empty_buffers_are_not_retained() {
        let mut pool = BufferPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn counters_are_monotonic() {
        let before = alloc_count::allocations();
        let v: Vec<u8> = Vec::with_capacity(32);
        drop(v);
        // Without the counting allocator installed the counters stay flat;
        // either way they never decrease.
        assert!(alloc_count::allocations() >= before);
        let _ = alloc_count::deallocations();
        let _ = alloc_count::allocated_bytes();
    }
}
