//! Accelerator performance and energy models.
//!
//! The ASV hardware (Sec. 5.2, Sec. 6.1) is a conventional systolic-array DNN
//! accelerator — 24×24 PEs at 1 GHz, a 1.5 MB unified double-buffered SRAM,
//! four LPDDR3-1600 channels — minimally extended with an
//! absolute-difference mode per PE and two extra point-wise operations in the
//! scalar unit so the ISM algorithm's optical flow and block matching can run
//! on the same datapath.  This crate prices workloads on that hardware and on
//! the comparison baselines of the evaluation:
//!
//! * [`energy`] — per-operation energy constants and the energy accounting
//!   used by every model.
//! * [`report`] — the [`ExecutionReport`] all models produce.
//! * [`systolic`] — the ASV/baseline systolic accelerator: runs stereo
//!   networks at any [`OptLevel`](asv_dataflow::OptLevel) and runs ISM
//!   non-key frames (optical flow + block matching) on the extended PE array
//!   and scalar unit.
//! * [`baselines`] — the Eyeriss-style spatial architecture, the mobile
//!   Pascal GPU and the GANNX deconvolution accelerator models used in
//!   Fig. 13 and Fig. 14.
//! * [`overhead`] — the area/power overhead accounting of Sec. 7.1.
//!
//! # Example
//!
//! ```
//! use asv_accel::systolic::SystolicAccelerator;
//! use asv_dataflow::OptLevel;
//! use asv_dnn::zoo;
//!
//! let accel = SystolicAccelerator::asv_default();
//! let net = zoo::flownetc(96, 192);
//! let baseline = accel.run_network(&net, OptLevel::Baseline);
//! let optimized = accel.run_network(&net, OptLevel::Ilar);
//! assert!(optimized.seconds < baseline.seconds);
//! assert!(optimized.energy_joules < baseline.energy_joules);
//! ```

pub mod baselines;
pub mod energy;
pub mod ism;
pub mod overhead;
pub mod report;
pub mod systolic;

pub use energy::EnergyModel;
pub use report::ExecutionReport;
pub use systolic::SystolicAccelerator;
