//! Comparison hardware models: Eyeriss-style spatial architecture, mobile
//! Pascal GPU and the GANNX deconvolution accelerator.
//!
//! These are analytical stand-ins for the external artifacts the paper
//! measures against (the public Eyeriss simulator, a Jetson TX2 board and the
//! GANNX paper's reported design).  Each model is configured with the *same*
//! compute, on-chip memory and bandwidth resources as the ASV configuration,
//! as the paper does for fairness, and differs only in how effectively it can
//! use them.  DESIGN.md records the substitution rationale.

use crate::energy::EnergyModel;
use crate::report::ExecutionReport;
use asv_dataflow::workload::LayerWorkload;
use asv_dataflow::HwConfig;
use asv_dnn::NetworkSpec;
use serde::{Deserialize, Serialize};

/// An Eyeriss-style row-stationary spatial architecture with the same PE
/// count, buffer capacity and DRAM bandwidth as the ASV configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EyerissModel {
    hw: HwConfig,
    energy: EnergyModel,
    /// Average PE-array utilisation of the row-stationary dataflow on these
    /// workloads (spatial mappings rarely keep every PE busy).
    utilization: f64,
    /// How many times activations/weights are re-fetched from DRAM relative
    /// to their footprint (the row-stationary reuse is good but it cannot
    /// exploit ILAR).
    dram_refetch_factor: f64,
}

impl EyerissModel {
    /// Eyeriss configured with the same resources as ASV (Sec. 6.2).
    pub fn matched_to(hw: HwConfig) -> Self {
        Self {
            hw,
            energy: EnergyModel::asv_16nm(),
            utilization: 0.72,
            dram_refetch_factor: 1.8,
        }
    }

    /// Runs one inference of `network`.
    ///
    /// With `transform_deconv` set, the deconvolution-to-convolution
    /// transformation (which is pure software and applies to any
    /// architecture) is applied first — this is the stronger "Eyeriss + DCT"
    /// baseline of Fig. 13.  Inter-layer activation reuse is never applied:
    /// Eyeriss's spatial mapping would require a different reuse formulation
    /// (Sec. 7.5).
    pub fn run_network(&self, network: &NetworkSpec, transform_deconv: bool) -> ExecutionReport {
        let mut macs = 0u64;
        let mut dram = 0u64;
        let mut sram = 0u64;
        for spec in &network.layers {
            let wl = if transform_deconv {
                LayerWorkload::transformed(spec)
            } else {
                LayerWorkload::naive(spec)
            };
            if wl.sub_kernels.is_empty() {
                continue;
            }
            macs += wl.total_macs();
            let footprint = wl.ifmap_bytes() + wl.total_weight_bytes() + wl.total_ofmap_bytes();
            dram += (footprint as f64 * self.dram_refetch_factor) as u64;
            sram += (footprint as f64 * self.dram_refetch_factor * 1.5) as u64;
        }
        let compute_seconds =
            macs as f64 / (self.hw.pe_count() as f64 * self.hw.frequency_hz * self.utilization);
        let memory_seconds = dram as f64 / (self.hw.dram_bytes_per_cycle * self.hw.frequency_hz);
        let seconds = compute_seconds.max(memory_seconds);
        let energy = self.energy.energy_joules(macs, sram, dram, 0, seconds);
        ExecutionReport {
            cycles: (seconds * self.hw.frequency_hz).ceil() as u64,
            seconds,
            macs,
            scalar_ops: 0,
            dram_bytes: dram,
            sram_bytes: sram,
            energy_joules: energy,
        }
    }
}

/// A mobile Pascal GPU (the Jetson TX2 used in Sec. 6.2), modelled as a
/// roofline with a fixed board power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Peak FP16 throughput in MAC/s.
    pub peak_macs_per_second: f64,
    /// Achievable fraction of peak on these workloads.
    pub efficiency: f64,
    /// Memory bandwidth in bytes/s.
    pub bandwidth_bytes_per_second: f64,
    /// Average board power in watts while running inference.
    pub power_w: f64,
}

impl GpuModel {
    /// Jetson TX2-class Pascal mobile GPU.
    pub fn jetson_tx2() -> Self {
        Self {
            // 256 CUDA cores at ~1.3 GHz, 2 FP16 MACs per core per cycle.
            peak_macs_per_second: 665.0e9,
            efficiency: 0.35,
            bandwidth_bytes_per_second: 58.4e9,
            power_w: 10.0,
        }
    }

    /// Runs one inference of `network` (always the naive execution: the GPU
    /// library does not apply the ASV transformation).
    pub fn run_network(&self, network: &NetworkSpec) -> ExecutionReport {
        let macs = network.total_naive_macs();
        let mut bytes = 0u64;
        for l in &network.layers {
            bytes += l.ifmap_bytes() + l.weight_bytes() + l.ofmap_bytes();
        }
        let compute_seconds = macs as f64 / (self.peak_macs_per_second * self.efficiency);
        let memory_seconds = bytes as f64 / self.bandwidth_bytes_per_second;
        let seconds = compute_seconds.max(memory_seconds);
        ExecutionReport {
            cycles: 0,
            seconds,
            macs,
            scalar_ops: 0,
            dram_bytes: bytes,
            sram_bytes: 0,
            energy_joules: seconds * self.power_w,
        }
    }
}

/// A GANNX-style dedicated deconvolution accelerator: it skips the
/// zero-operand MACs of deconvolution in hardware (so it executes the same
/// effective MACs as the ASV transformation) but cannot exploit inter-layer
/// activation reuse, and its reorganisation logic costs some utilisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GannxModel {
    hw: HwConfig,
    energy: EnergyModel,
    utilization: f64,
    dram_refetch_factor: f64,
}

impl GannxModel {
    /// GANNX configured with the same PE and buffer resources as ASV
    /// (Sec. 7.6).
    pub fn matched_to(hw: HwConfig) -> Self {
        Self {
            hw,
            energy: EnergyModel::asv_16nm(),
            utilization: 0.85,
            dram_refetch_factor: 1.35,
        }
    }

    /// Runs one inference of `network` (a GAN generator).
    pub fn run_network(&self, network: &NetworkSpec) -> ExecutionReport {
        let mut macs = 0u64;
        let mut dram = 0u64;
        for spec in &network.layers {
            let wl = LayerWorkload::transformed(spec);
            if wl.sub_kernels.is_empty() {
                continue;
            }
            macs += wl.total_macs();
            // No ILAR: each sub-convolution re-fetches the shared ifmap.
            let ifmap_fetches = wl.sub_kernels.len().max(1) as u64;
            let footprint =
                wl.ifmap_bytes() * ifmap_fetches + wl.total_weight_bytes() + wl.total_ofmap_bytes();
            dram += (footprint as f64 * self.dram_refetch_factor) as u64;
        }
        let sram = (dram as f64 * 1.5) as u64;
        let compute_seconds =
            macs as f64 / (self.hw.pe_count() as f64 * self.hw.frequency_hz * self.utilization);
        let memory_seconds = dram as f64 / (self.hw.dram_bytes_per_cycle * self.hw.frequency_hz);
        let seconds = compute_seconds.max(memory_seconds);
        let energy = self.energy.energy_joules(macs, sram, dram, 0, seconds);
        ExecutionReport {
            cycles: (seconds * self.hw.frequency_hz).ceil() as u64,
            seconds,
            macs,
            scalar_ops: 0,
            dram_bytes: dram,
            sram_bytes: sram,
            energy_joules: energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systolic::SystolicAccelerator;
    use asv_dataflow::OptLevel;
    use asv_dnn::{gan, zoo};

    #[test]
    fn eyeriss_benefits_from_the_software_transformation() {
        let eyeriss = EyerissModel::matched_to(HwConfig::asv_default());
        let net = zoo::gcnet(96, 192, 48);
        let plain = eyeriss.run_network(&net, false);
        let with_dct = eyeriss.run_network(&net, true);
        let speedup = with_dct.speedup_over(&plain);
        // Fig. 13: Eyeriss + DCT is ~1.6x faster than plain Eyeriss.
        assert!(speedup > 1.1 && speedup < 3.0, "speedup {speedup}");
        assert!(with_dct.energy_joules < plain.energy_joules);
    }

    #[test]
    fn asv_outperforms_eyeriss_and_gpu() {
        let accel = SystolicAccelerator::asv_default();
        let eyeriss = EyerissModel::matched_to(HwConfig::asv_default());
        let gpu = GpuModel::jetson_tx2();
        let net = zoo::dispnet(96, 192);
        let asv = accel.run_network(&net, OptLevel::Ilar);
        let eye = eyeriss.run_network(&net, false);
        let gpu_r = gpu.run_network(&net);
        assert!(asv.seconds < eye.seconds);
        assert!(asv.energy_joules < eye.energy_joules);
        // The GPU is the slowest, most power-hungry platform (Fig. 13).
        assert!(gpu_r.seconds > eye.seconds);
        assert!(gpu_r.energy_joules > eye.energy_joules);
    }

    #[test]
    fn gpu_roofline_is_sane() {
        let gpu = GpuModel::jetson_tx2();
        let net = zoo::flownetc(96, 192);
        let r = gpu.run_network(&net);
        assert!(r.seconds > 0.0);
        assert!(r.fps() < 1000.0);
        assert_eq!(r.macs, net.total_naive_macs());
    }

    #[test]
    fn asv_beats_gannx_on_gans_via_ilar() {
        // Fig. 14: under equal resources ASV is ~1.4x faster than the
        // dedicated GANNX accelerator because of inter-layer activation reuse.
        let accel = SystolicAccelerator::asv_default();
        let gannx = GannxModel::matched_to(HwConfig::asv_default());
        let mut asv_faster = 0;
        let suite = gan::gannx_suite();
        for net in &suite {
            let asv = accel.run_network(net, OptLevel::Ilar);
            let gx = gannx.run_network(net);
            if asv.seconds <= gx.seconds {
                asv_faster += 1;
            }
        }
        assert!(
            asv_faster >= suite.len() - 1,
            "ASV faster on only {asv_faster}/{} GANs",
            suite.len()
        );
    }

    #[test]
    fn gannx_beats_naive_eyeriss_on_gans() {
        let gannx = GannxModel::matched_to(HwConfig::asv_default());
        let eyeriss = EyerissModel::matched_to(HwConfig::asv_default());
        let net = gan::dcgan();
        let gx = gannx.run_network(&net);
        let eye = eyeriss.run_network(&net, false);
        assert!(gx.speedup_over(&eye) > 1.5);
    }
}
