//! Per-operation energy constants and energy accounting.
//!
//! The RTL/PrimeTime power numbers of the paper cannot be regenerated without
//! the 16 nm PDK, so energy is modelled from event counts with per-event
//! energies taken from the usual published 16/28 nm figures (scaled to 16 nm):
//! a 16-bit MAC costs a fraction of a picojoule, an SRAM byte a few
//! picojoules, and a DRAM byte tens of picojoules.  Because every comparison
//! in the paper is *relative* (speedup, % energy saved), the conclusions
//! depend on the ratios of these constants, not their absolute calibration;
//! DESIGN.md discusses this substitution.

use serde::{Deserialize, Serialize};

/// Energy cost model of the accelerator datapath and memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one 16-bit multiply-accumulate, in picojoules.
    pub mac_pj: f64,
    /// Energy of moving one byte through the on-chip SRAM, in picojoules.
    pub sram_pj_per_byte: f64,
    /// Energy of moving one byte to/from LPDDR3 DRAM, in picojoules.
    pub dram_pj_per_byte: f64,
    /// Energy of one scalar-unit point-wise operation, in picojoules.
    pub scalar_op_pj: f64,
    /// Idle/leakage power of the accelerator in watts, charged for the full
    /// runtime.
    pub leakage_w: f64,
}

impl EnergyModel {
    /// Default 16 nm-class constants.
    pub fn asv_16nm() -> Self {
        Self {
            mac_pj: 0.6,
            sram_pj_per_byte: 2.5,
            dram_pj_per_byte: 60.0,
            scalar_op_pj: 1.2,
            leakage_w: 0.05,
        }
    }

    /// Energy in joules of a workload described by its event counts and
    /// runtime.
    pub fn energy_joules(
        &self,
        macs: u64,
        sram_bytes: u64,
        dram_bytes: u64,
        scalar_ops: u64,
        seconds: f64,
    ) -> f64 {
        let dynamic_pj = macs as f64 * self.mac_pj
            + sram_bytes as f64 * self.sram_pj_per_byte
            + dram_bytes as f64 * self.dram_pj_per_byte
            + scalar_ops as f64 * self.scalar_op_pj;
        dynamic_pj * 1e-12 + self.leakage_w * seconds
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::asv_16nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dominates_per_byte_costs() {
        let m = EnergyModel::asv_16nm();
        assert!(m.dram_pj_per_byte > 10.0 * m.sram_pj_per_byte);
        assert!(m.sram_pj_per_byte > m.mac_pj);
    }

    #[test]
    fn energy_scales_linearly_with_events() {
        let m = EnergyModel::asv_16nm();
        let one = m.energy_joules(1_000_000, 0, 0, 0, 0.0);
        let two = m.energy_joules(2_000_000, 0, 0, 0, 0.0);
        assert!((two / one - 2.0).abs() < 1e-9);
        assert_eq!(m.energy_joules(0, 0, 0, 0, 0.0), 0.0);
    }

    #[test]
    fn leakage_is_charged_for_runtime() {
        let m = EnergyModel::asv_16nm();
        let idle = m.energy_joules(0, 0, 0, 0, 2.0);
        assert!((idle - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mixed_workload_energy_is_sum_of_parts() {
        let m = EnergyModel::asv_16nm();
        let total = m.energy_joules(100, 200, 300, 400, 0.0);
        let parts = m.energy_joules(100, 0, 0, 0, 0.0)
            + m.energy_joules(0, 200, 0, 0, 0.0)
            + m.energy_joules(0, 0, 300, 0, 0.0)
            + m.energy_joules(0, 0, 0, 400, 0.0);
        assert!((total - parts).abs() < 1e-15);
    }
}
