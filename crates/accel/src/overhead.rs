//! Hardware area and power overhead accounting (Sec. 7.1).
//!
//! ASV extends a conventional systolic-array accelerator in three places:
//! each PE gains an accumulate-absolute-difference mode (for SAD block
//! matching), the scalar unit gains the two point-wise optical-flow
//! operations, and a small amount of glue logic handles comparisons and
//! control flow.  The paper reports the resulting overhead as 6.3 % area and
//! 2.3 % power per PE, and below 0.5 % of the whole accelerator.  This module
//! reproduces that accounting from the per-block constants.

use serde::{Deserialize, Serialize};

/// Post-layout characteristics of the baseline accelerator and the ASV
/// extensions, in the paper's 16 nm implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerBudget {
    /// Total accelerator area in mm² (PE array + SRAM + scalar unit + NoC).
    pub total_area_mm2: f64,
    /// Total accelerator power in watts at nominal load.
    pub total_power_w: f64,
    /// Number of PEs.
    pub pe_count: usize,
    /// Area of one baseline PE in µm².
    pub pe_area_um2: f64,
    /// Power of one baseline PE in mW.
    pub pe_power_mw: f64,
    /// Extra area per PE for the absolute-difference mode, in µm².
    pub pe_sad_extra_area_um2: f64,
    /// Extra power per PE for the absolute-difference mode, in mW.
    pub pe_sad_extra_power_mw: f64,
    /// Extra area of the scalar-unit extensions, in mm².
    pub scalar_extra_area_mm2: f64,
    /// Extra power of the scalar-unit extensions, in mW.
    pub scalar_extra_power_mw: f64,
}

impl AreaPowerBudget {
    /// The paper's 24×24-PE, 16 nm configuration: 3.0 mm² total, with the PE
    /// extension costing 15.3 µm² / 0.02 mW per PE and the scalar extension
    /// 0.02 mm² / 2.2 mW.
    pub fn asv_16nm() -> Self {
        Self {
            total_area_mm2: 3.0,
            total_power_w: 1.2,
            pe_count: 576,
            pe_area_um2: 243.0,
            pe_power_mw: 0.87,
            pe_sad_extra_area_um2: 15.3,
            pe_sad_extra_power_mw: 0.02,
            scalar_extra_area_mm2: 0.005,
            scalar_extra_power_mw: 2.2,
        }
    }

    /// Per-PE area overhead fraction of the absolute-difference extension.
    pub fn pe_area_overhead(&self) -> f64 {
        self.pe_sad_extra_area_um2 / self.pe_area_um2
    }

    /// Per-PE power overhead fraction of the absolute-difference extension.
    pub fn pe_power_overhead(&self) -> f64 {
        self.pe_sad_extra_power_mw / self.pe_power_mw
    }

    /// Whole-accelerator area overhead fraction of all ASV extensions.
    pub fn total_area_overhead(&self) -> f64 {
        let extra_mm2 =
            self.pe_count as f64 * self.pe_sad_extra_area_um2 * 1e-6 + self.scalar_extra_area_mm2;
        extra_mm2 / self.total_area_mm2
    }

    /// Whole-accelerator power overhead fraction of all ASV extensions.
    pub fn total_power_overhead(&self) -> f64 {
        let extra_w = self.pe_count as f64 * self.pe_sad_extra_power_mw * 1e-3
            + self.scalar_extra_power_mw * 1e-3;
        extra_w / self.total_power_w
    }
}

impl Default for AreaPowerBudget {
    fn default() -> Self {
        Self::asv_16nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_pe_overheads_match_the_paper() {
        let b = AreaPowerBudget::asv_16nm();
        // Sec. 7.1: 6.3 % area and 2.3 % power overhead per PE.
        assert!(
            (b.pe_area_overhead() - 0.063).abs() < 0.005,
            "{}",
            b.pe_area_overhead()
        );
        assert!(
            (b.pe_power_overhead() - 0.023).abs() < 0.005,
            "{}",
            b.pe_power_overhead()
        );
    }

    #[test]
    fn total_overheads_stay_below_half_a_percent_area_and_one_percent_power() {
        let b = AreaPowerBudget::asv_16nm();
        assert!(
            b.total_area_overhead() < 0.005,
            "{}",
            b.total_area_overhead()
        );
        assert!(
            b.total_power_overhead() < 0.02,
            "{}",
            b.total_power_overhead()
        );
        assert!(b.total_area_overhead() > 0.0);
        assert!(b.total_power_overhead() > 0.0);
    }
}
