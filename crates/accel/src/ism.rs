//! Cost model of ISM non-key-frame processing on the ASV hardware.
//!
//! On non-key frames ISM runs no DNN at all (Sec. 3.3): it estimates motion
//! with Farneback optical flow, propagates the key-frame correspondences and
//! refines them with a narrow block-matching search.  The ASV software maps
//! the convolution-like parts (Gaussian blur, SAD block matching) onto the
//! systolic array — whose PEs are extended with an accumulate-absolute-
//! difference mode — and the point-wise parts ("compute flow", "matrix
//! update") onto the scalar unit (Sec. 5.1, Fig. 8).  This module counts those
//! operations and prices them with [`SystolicAccelerator::run_op_counts`].

use crate::report::ExecutionReport;
use crate::systolic::SystolicAccelerator;
use asv_flow::farneback::{farneback_op_breakdown, FarnebackParams};
use asv_stereo::block_matching::{refine_op_count, BlockMatchParams};
use serde::{Deserialize, Serialize};

/// Parameters of the non-key-frame pipeline (motion estimation + refinement).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonKeyFrameConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Integer factor by which the frames are downscaled before motion
    /// estimation.  The propagated correspondences only seed a local search,
    /// so quarter-resolution motion is sufficient (the block-matching
    /// refinement absorbs the residual error, Sec. 3.2 step 4).
    pub flow_downscale: usize,
    /// Optical-flow parameters (applied at the downscaled resolution).
    pub flow: FarnebackParams,
    /// Block-matching refinement parameters (applied at full resolution).
    pub refine: BlockMatchParams,
}

impl NonKeyFrameConfig {
    /// The paper's qHD (960×540) evaluation point.
    pub fn qhd() -> Self {
        Self {
            width: 960,
            height: 540,
            flow_downscale: 2,
            flow: FarnebackParams {
                pyramid_levels: 2,
                iterations: 2,
                ..FarnebackParams::default()
            },
            refine: BlockMatchParams::default(),
        }
    }

    /// A configuration for an arbitrary resolution.
    pub fn with_resolution(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            ..Self::qhd()
        }
    }
}

/// Operation counts of one non-key frame, split by execution resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NonKeyFrameOps {
    /// Convolution-like operations executed on the systolic array (Gaussian
    /// blur of the optical flow, SAD block matching — both frames).
    pub array_ops: u64,
    /// Point-wise operations executed on the scalar unit (compute-flow,
    /// matrix-update, correspondence reconstruction).
    pub scalar_ops: u64,
    /// DRAM traffic in bytes (current + key frame pixels, motion vectors and
    /// disparity maps, Sec. 5.2).
    pub dram_bytes: u64,
}

impl NonKeyFrameOps {
    /// Total operations of the non-key frame.
    pub fn total_ops(&self) -> u64 {
        self.array_ops + self.scalar_ops
    }
}

/// Counts the work of one non-key frame.
pub fn nonkey_frame_ops(config: &NonKeyFrameConfig) -> NonKeyFrameOps {
    let scale = config.flow_downscale.max(1);
    let flow = farneback_op_breakdown(config.width / scale, config.height / scale, &config.flow);
    // Both the left and right frames need motion vectors (the correspondences
    // move in both views, Sec. 3.2 step 3).  The Gaussian-blur moment filters
    // and the per-pixel expansion solve (a 1×1 convolution over 6 channels)
    // run on the systolic array; the matrix-update and compute-flow stages
    // run on the scalar unit.
    let array_flow_ops = 2 * (flow.blur_ops + flow.expansion_solve_ops);
    let pointwise_flow_ops = 2 * (flow.matrix_update_ops + flow.compute_flow_ops);
    // Correspondence refinement: narrow SAD search around the propagated
    // disparity, on the left frame, mapped onto the SAD-extended PE array.
    let refine_ops = refine_op_count(config.width, config.height, &config.refine);
    // Correspondence reconstruction + propagation are one pass over the
    // disparity map each (a handful of scalar operations per pixel).
    let pixels = (config.width * config.height) as u64;
    let reconstruction_ops = 4 * pixels;

    // DRAM traffic: the four frames (current + key, left + right), the motion
    // vectors (2 × 2 components) and the two disparity maps, at 2 bytes per
    // element (Sec. 5.2's minimum-buffer discussion).
    let dram_bytes = pixels * 2 * (4 + 4 + 2);

    NonKeyFrameOps {
        array_ops: array_flow_ops + refine_ops,
        scalar_ops: pointwise_flow_ops + reconstruction_ops,
        dram_bytes,
    }
}

/// Prices one non-key frame on the given accelerator.
pub fn nonkey_frame_report(
    accel: &SystolicAccelerator,
    config: &NonKeyFrameConfig,
) -> ExecutionReport {
    let ops = nonkey_frame_ops(config);
    accel.run_op_counts(ops.array_ops, ops.scalar_ops, ops.dram_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_dataflow::OptLevel;
    use asv_dnn::zoo;

    #[test]
    fn qhd_non_key_frame_costs_tens_of_megaops() {
        // Sec. 3.3: "computing a non-key frame requires about 87 million
        // operations" at qHD.  The exact figure depends on the flow
        // parameters; require the same order of magnitude.
        let ops = nonkey_frame_ops(&NonKeyFrameConfig::qhd());
        let total = ops.total_ops();
        assert!(total > 20_000_000, "total {total}");
        assert!(total < 1_200_000_000, "total {total}");
    }

    #[test]
    fn non_key_frame_is_orders_of_magnitude_cheaper_than_dnn() {
        // Sec. 3.3: stereo DNN inference needs 10^2 - 10^4 x more arithmetic.
        let ops = nonkey_frame_ops(&NonKeyFrameConfig::qhd()).total_ops() as f64;
        for net in zoo::suite(540, 960, 192) {
            let ratio = net.total_naive_macs() as f64 / ops;
            assert!(ratio > 20.0, "{}: ratio {ratio}", net.name);
            assert!(ratio < 1e5, "{}: ratio {ratio}", net.name);
        }
    }

    #[test]
    fn non_key_frame_runs_in_real_time_on_asv() {
        let accel = SystolicAccelerator::asv_default();
        let report = nonkey_frame_report(&accel, &NonKeyFrameConfig::qhd());
        // Non-key frames must comfortably exceed 30 FPS for ASV's real-time
        // claim to hold.
        assert!(report.fps() > 30.0, "fps {}", report.fps());
        assert!(report.energy_joules > 0.0);
    }

    #[test]
    fn non_key_frame_is_much_faster_than_key_frame_inference() {
        let accel = SystolicAccelerator::asv_default();
        let nonkey = nonkey_frame_report(&accel, &NonKeyFrameConfig::with_resolution(192, 96));
        let net = zoo::dispnet(96, 192);
        let key = accel.run_network(&net, OptLevel::Ilar);
        assert!(key.seconds / nonkey.seconds > 5.0);
    }

    #[test]
    fn ops_scale_with_resolution() {
        let small = nonkey_frame_ops(&NonKeyFrameConfig::with_resolution(480, 270)).total_ops();
        let large = nonkey_frame_ops(&NonKeyFrameConfig::qhd()).total_ops();
        let ratio = large as f64 / small as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }
}
