//! The ASV systolic-array accelerator model (and its unoptimized baseline).

use crate::energy::EnergyModel;
use crate::report::ExecutionReport;
use asv_dataflow::network::schedule_network;
use asv_dataflow::{HwConfig, OptLevel};
use asv_dnn::NetworkSpec;
use serde::{Deserialize, Serialize};

/// Configuration of the scalar (point-wise) unit attached to the systolic
/// array (Sec. 6.1: 8 lanes at 250 MHz).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarUnitConfig {
    /// Number of parallel lanes.
    pub lanes: usize,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
}

impl Default for ScalarUnitConfig {
    fn default() -> Self {
        Self {
            lanes: 8,
            frequency_hz: 250.0e6,
        }
    }
}

/// The systolic-array accelerator: a dataflow hardware configuration, a
/// scalar unit and an energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystolicAccelerator {
    hw: HwConfig,
    scalar: ScalarUnitConfig,
    energy: EnergyModel,
}

impl SystolicAccelerator {
    /// Creates an accelerator from explicit configurations.
    pub fn new(hw: HwConfig, scalar: ScalarUnitConfig, energy: EnergyModel) -> Self {
        Self { hw, scalar, energy }
    }

    /// The evaluation configuration of Sec. 6.1.
    pub fn asv_default() -> Self {
        Self {
            hw: HwConfig::asv_default(),
            scalar: ScalarUnitConfig::default(),
            energy: EnergyModel::asv_16nm(),
        }
    }

    /// The dataflow hardware configuration.
    pub fn hw(&self) -> &HwConfig {
        &self.hw
    }

    /// The energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The scalar-unit configuration.
    pub fn scalar_unit(&self) -> &ScalarUnitConfig {
        &self.scalar
    }

    /// Returns a copy of the accelerator with a different hardware
    /// configuration (used by the Fig. 12 sensitivity sweep).
    pub fn with_hw(&self, hw: HwConfig) -> Self {
        Self { hw, ..self.clone() }
    }

    /// Executes one inference of `network` at the given optimization level
    /// and returns its cost.
    pub fn run_network(&self, network: &NetworkSpec, level: OptLevel) -> ExecutionReport {
        let cost = schedule_network(network, &self.hw, level);
        self.report_from_counts(
            cost.total_cycles,
            cost.total_macs,
            0,
            cost.total_dram_bytes,
            cost.total_sram_bytes,
        )
    }

    /// Executes only the deconvolution layers of `network` (the basis of
    /// Fig. 11a).
    pub fn run_deconv_layers(&self, network: &NetworkSpec, level: OptLevel) -> ExecutionReport {
        let cost = schedule_network(network, &self.hw, level);
        let deconv = cost.deconv_cost();
        self.report_from_counts(
            deconv.cycles,
            deconv.macs,
            0,
            deconv.dram_bytes(),
            deconv.sram_bytes,
        )
    }

    /// Prices work expressed directly as operation counts: `array_ops`
    /// multiply-accumulate (or accumulate-absolute-difference) operations on
    /// the systolic array plus `scalar_ops` point-wise operations on the
    /// scalar unit, moving `dram_bytes` to/from DRAM.
    ///
    /// The array and the scalar unit overlap in time (the latency is the
    /// maximum of the two), which is how ISM's optical flow and block
    /// matching are mapped (Sec. 5.1).
    pub fn run_op_counts(
        &self,
        array_ops: u64,
        scalar_ops: u64,
        dram_bytes: u64,
    ) -> ExecutionReport {
        let array_cycles = array_ops.div_ceil(self.hw.pe_count());
        let array_seconds = array_cycles as f64 / self.hw.frequency_hz;
        let scalar_seconds =
            scalar_ops as f64 / (self.scalar.lanes as f64 * self.scalar.frequency_hz);
        let memory_seconds =
            dram_bytes as f64 / (self.hw.dram_bytes_per_cycle * self.hw.frequency_hz);
        let seconds = array_seconds.max(scalar_seconds).max(memory_seconds);
        let cycles = (seconds * self.hw.frequency_hz).ceil() as u64;
        // All array operands are staged through the SRAM at least once.
        let sram_bytes = dram_bytes + array_ops * 2;
        let energy = self
            .energy
            .energy_joules(array_ops, sram_bytes, dram_bytes, scalar_ops, seconds);
        ExecutionReport {
            cycles,
            seconds,
            macs: array_ops,
            scalar_ops,
            dram_bytes,
            sram_bytes,
            energy_joules: energy,
        }
    }

    fn report_from_counts(
        &self,
        cycles: u64,
        macs: u64,
        scalar_ops: u64,
        dram_bytes: u64,
        sram_bytes: u64,
    ) -> ExecutionReport {
        let seconds = self.hw.cycles_to_seconds(cycles);
        let energy = self
            .energy
            .energy_joules(macs, sram_bytes, dram_bytes, scalar_ops, seconds);
        ExecutionReport {
            cycles,
            seconds,
            macs,
            scalar_ops,
            dram_bytes,
            sram_bytes,
            energy_joules: energy,
        }
    }
}

impl Default for SystolicAccelerator {
    fn default() -> Self {
        Self::asv_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_dnn::zoo;

    #[test]
    fn optimizations_improve_latency_and_energy() {
        let accel = SystolicAccelerator::asv_default();
        let net = zoo::dispnet(96, 192);
        let baseline = accel.run_network(&net, OptLevel::Baseline);
        let dct = accel.run_network(&net, OptLevel::Dct);
        let ilar = accel.run_network(&net, OptLevel::Ilar);
        assert!(dct.seconds < baseline.seconds);
        assert!(ilar.seconds <= dct.seconds);
        assert!(ilar.energy_joules < baseline.energy_joules);
        assert!(baseline.fps() > 0.0);
    }

    #[test]
    fn deconv_only_speedup_exceeds_whole_network_speedup() {
        let accel = SystolicAccelerator::asv_default();
        let net = zoo::flownetc(96, 192);
        let full_base = accel.run_network(&net, OptLevel::Baseline);
        let full_opt = accel.run_network(&net, OptLevel::Ilar);
        let deconv_base = accel.run_deconv_layers(&net, OptLevel::Baseline);
        let deconv_opt = accel.run_deconv_layers(&net, OptLevel::Ilar);
        let full_speedup = full_opt.speedup_over(&full_base);
        let deconv_speedup = deconv_opt.speedup_over(&deconv_base);
        assert!(
            deconv_speedup > full_speedup,
            "deconv {deconv_speedup} vs full {full_speedup}"
        );
        assert!(deconv_speedup > 2.0, "deconv speedup {deconv_speedup}");
    }

    #[test]
    fn op_count_execution_overlaps_array_and_scalar() {
        let accel = SystolicAccelerator::asv_default();
        let array_only = accel.run_op_counts(1_000_000_000, 0, 0);
        let scalar_only = accel.run_op_counts(0, 1_000_000, 0);
        let both = accel.run_op_counts(1_000_000_000, 1_000_000, 0);
        assert!(both.seconds <= array_only.seconds + scalar_only.seconds);
        assert!(both.seconds >= array_only.seconds.max(scalar_only.seconds) * 0.999);
        assert!(both.energy_joules > array_only.energy_joules);
    }

    #[test]
    fn memory_bound_op_counts_are_limited_by_bandwidth() {
        let accel = SystolicAccelerator::asv_default();
        let r = accel.run_op_counts(1000, 0, 1_000_000_000);
        // 1 GB over 25.6 GB/s ≈ 39 ms.
        assert!(r.seconds > 0.03 && r.seconds < 0.05, "{}", r.seconds);
    }

    #[test]
    fn with_hw_changes_resources() {
        let accel = SystolicAccelerator::asv_default();
        let small = accel.with_hw(HwConfig::asv_default().with_pe_array(8, 8));
        let net = zoo::dispnet(96, 192);
        let big_r = accel.run_network(&net, OptLevel::Ilar);
        let small_r = small.run_network(&net, OptLevel::Ilar);
        assert!(small_r.seconds > big_r.seconds);
    }
}
