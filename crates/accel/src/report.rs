//! Execution reports shared by all accelerator models.

use serde::{Deserialize, Serialize};

/// Outcome of executing a workload (one frame's worth of work unless stated
/// otherwise) on one of the hardware models.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Latency in accelerator cycles (0 for models that are not cycle-based).
    pub cycles: u64,
    /// Latency in seconds.
    pub seconds: f64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Scalar (point-wise) operations performed.
    pub scalar_ops: u64,
    /// DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// SRAM traffic in bytes.
    pub sram_bytes: u64,
    /// Energy in joules.
    pub energy_joules: f64,
}

impl ExecutionReport {
    /// Frames per second if this report describes one frame of work.
    pub fn fps(&self) -> f64 {
        if self.seconds <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.seconds
        }
    }

    /// Speedup of this report relative to `other` (how many times faster this
    /// one is).
    pub fn speedup_over(&self, other: &ExecutionReport) -> f64 {
        if self.seconds <= 0.0 {
            f64::INFINITY
        } else {
            other.seconds / self.seconds
        }
    }

    /// Fractional energy reduction relative to `other` (1 − E/E_other).
    pub fn energy_reduction_vs(&self, other: &ExecutionReport) -> f64 {
        if other.energy_joules <= 0.0 {
            0.0
        } else {
            1.0 - self.energy_joules / other.energy_joules
        }
    }

    /// Element-wise sum of two reports (work executed back to back).
    pub fn combine(&self, other: &ExecutionReport) -> ExecutionReport {
        ExecutionReport {
            cycles: self.cycles + other.cycles,
            seconds: self.seconds + other.seconds,
            macs: self.macs + other.macs,
            scalar_ops: self.scalar_ops + other.scalar_ops,
            dram_bytes: self.dram_bytes + other.dram_bytes,
            sram_bytes: self.sram_bytes + other.sram_bytes,
            energy_joules: self.energy_joules + other.energy_joules,
        }
    }

    /// This report scaled by a constant factor (e.g. amortising one key frame
    /// over a propagation window).
    pub fn scaled(&self, factor: f64) -> ExecutionReport {
        ExecutionReport {
            cycles: (self.cycles as f64 * factor).round() as u64,
            seconds: self.seconds * factor,
            macs: (self.macs as f64 * factor).round() as u64,
            scalar_ops: (self.scalar_ops as f64 * factor).round() as u64,
            dram_bytes: (self.dram_bytes as f64 * factor).round() as u64,
            sram_bytes: (self.sram_bytes as f64 * factor).round() as u64,
            energy_joules: self.energy_joules * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seconds: f64, energy: f64) -> ExecutionReport {
        ExecutionReport {
            seconds,
            energy_joules: energy,
            cycles: 100,
            macs: 10,
            ..Default::default()
        }
    }

    #[test]
    fn fps_and_speedup() {
        let fast = report(0.01, 1.0);
        let slow = report(0.05, 4.0);
        assert!((fast.fps() - 100.0).abs() < 1e-9);
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-9);
        assert!((fast.energy_reduction_vs(&slow) - 0.75).abs() < 1e-9);
        let degenerate = report(0.0, 0.0);
        assert!(degenerate.fps().is_infinite());
        assert_eq!(fast.energy_reduction_vs(&degenerate), 0.0);
    }

    #[test]
    fn combine_and_scale() {
        let a = report(1.0, 2.0);
        let b = report(3.0, 4.0);
        let c = a.combine(&b);
        assert_eq!(c.seconds, 4.0);
        assert_eq!(c.energy_joules, 6.0);
        assert_eq!(c.cycles, 200);
        let half = a.scaled(0.5);
        assert_eq!(half.seconds, 0.5);
        assert_eq!(half.cycles, 50);
        assert_eq!(half.macs, 5);
    }
}
