//! Dense optical flow for the ISM correspondence-propagation step.
//!
//! The ISM algorithm (Sec. 3 of the ASV paper) propagates stereo
//! correspondences from key frames to non-key frames using a *dense* optical
//! flow algorithm — the paper selects Farneback's polynomial-expansion flow
//! because it produces per-pixel motion at modest compute cost, and because
//! 99 % of its compute decomposes into Gaussian blur ("conv-like") plus two
//! point-wise stages ("Compute Flow" and "Matrix Update") that map onto the
//! scalar unit of a DNN accelerator.
//!
//! This crate provides:
//!
//! * [`FlowField`] — a dense per-pixel displacement field with the usual
//!   end-point-error metrics.
//! * [`farneback`] — a from-scratch implementation of Farneback's two-frame
//!   polynomial expansion flow, structured exactly as the three stages the
//!   paper maps onto hardware (Gaussian blur, compute-flow, matrix-update).
//! * [`block`] — a simple exhaustive block-matching flow used as a baseline
//!   and as an accuracy cross-check in tests.
//!
//! # Example
//!
//! ```
//! use asv_image::{Image, warp::translate};
//! use asv_flow::farneback::{farneback_flow, FarnebackParams};
//!
//! let frame0 = Image::from_fn(64, 48, |x, y| ((x * 13 + y * 7) % 29) as f32 / 29.0);
//! let frame1 = translate(&frame0, 2, 0);
//! let flow = farneback_flow(&frame0, &frame1, &FarnebackParams::default()).unwrap();
//! // The recovered median horizontal motion is close to the true +2 pixels.
//! assert!((flow.median_u() - 2.0).abs() < 0.75);
//! ```

pub mod block;
pub mod farneback;
pub mod field;

pub use field::{FlowError, FlowField};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, FlowError>;
