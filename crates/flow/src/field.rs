//! Dense displacement fields and their quality metrics.

use asv_image::Image;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error type for flow estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// The two input frames do not have the same dimensions.
    FrameMismatch {
        /// Human readable description.
        context: String,
    },
    /// An algorithm parameter is invalid (zero window, empty image, ...).
    InvalidParameter {
        /// Human readable description.
        context: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::FrameMismatch { context } => write!(f, "frame mismatch: {context}"),
            FlowError::InvalidParameter { context } => write!(f, "invalid parameter: {context}"),
        }
    }
}

impl Error for FlowError {}

impl FlowError {
    /// Builds a [`FlowError::FrameMismatch`] from anything displayable.
    pub fn frame_mismatch(context: impl fmt::Display) -> Self {
        FlowError::FrameMismatch {
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }

    /// Builds a [`FlowError::InvalidParameter`] from anything displayable.
    pub fn invalid_parameter(context: impl fmt::Display) -> Self {
        FlowError::InvalidParameter {
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }
}

/// A dense per-pixel displacement field.
///
/// `u` holds the horizontal and `v` the vertical displacement of each pixel
/// from the first frame to the second frame (i.e. a pixel at `(x, y)` in
/// frame `t` appears at `(x + u, y + v)` in frame `t + 1`).
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowField {
    u: Image,
    v: Image,
}

impl Clone for FlowField {
    fn clone(&self) -> Self {
        Self {
            u: self.u.clone(), // lint: alloc-ok(deep copy by Clone contract; hot path uses clone_from)
            v: self.v.clone(), // lint: alloc-ok(deep copy by Clone contract; hot path uses clone_from)
        }
    }

    /// Copies `source` reusing both component buffers (see
    /// [`Image::clone_from`]).
    fn clone_from(&mut self, source: &Self) {
        self.u.clone_from(&source.u);
        self.v.clone_from(&source.v);
    }
}

impl FlowField {
    /// Creates an all-zero flow field.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self {
            u: Image::zeros(width, height),
            v: Image::zeros(width, height),
        }
    }

    /// Re-shapes the field to `width x height` with both components zeroed,
    /// reusing the existing buffers when their capacity suffices.
    pub fn reset_zeros(&mut self, width: usize, height: usize) {
        self.u.reset(width, height, 0.0);
        self.v.reset(width, height, 0.0);
    }

    /// Re-shapes the field leaving its contents *unspecified* (see
    /// [`Image::reshape_scratch`]); for kernels that assign every pixel.
    pub fn reshape_scratch(&mut self, width: usize, height: usize) {
        self.u.reshape_scratch(width, height);
        self.v.reshape_scratch(width, height);
    }

    /// Creates a flow field from its two component images.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::FrameMismatch`] when the components differ in
    /// size.
    pub fn from_components(u: Image, v: Image) -> crate::Result<Self> {
        if u.width() != v.width() || u.height() != v.height() {
            return Err(FlowError::frame_mismatch(format!(
                "u {}x{} vs v {}x{}",
                u.width(),
                u.height(),
                v.width(),
                v.height()
            )));
        }
        Ok(Self { u, v })
    }

    /// Creates a constant (translational) flow field.
    pub fn constant(width: usize, height: usize, u: f32, v: f32) -> Self {
        Self {
            u: Image::filled(width, height, u),
            v: Image::filled(width, height, v),
        }
    }

    /// Field width in pixels.
    pub fn width(&self) -> usize {
        self.u.width()
    }

    /// Field height in pixels.
    pub fn height(&self) -> usize {
        self.u.height()
    }

    /// Horizontal component image.
    pub fn u(&self) -> &Image {
        &self.u
    }

    /// Vertical component image.
    pub fn v(&self) -> &Image {
        &self.v
    }

    /// Mutable horizontal component image.
    pub fn u_mut(&mut self) -> &mut Image {
        &mut self.u
    }

    /// Mutable vertical component image.
    pub fn v_mut(&mut self) -> &mut Image {
        &mut self.v
    }

    /// Displacement at pixel `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> (f32, f32) {
        (self.u.at(x, y), self.v.at(x, y))
    }

    /// Sets the displacement at pixel `(x, y)`.
    pub fn set(&mut self, x: usize, y: usize, u: f32, v: f32) {
        self.u.set(x, y, u);
        self.v.set(x, y, v);
    }

    /// Bilinearly sampled displacement at a real-valued coordinate.
    pub fn sample(&self, x: f32, y: f32) -> (f32, f32) {
        (self.u.sample_bilinear(x, y), self.v.sample_bilinear(x, y))
    }

    /// Average end-point error against a ground-truth field of the same size.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::FrameMismatch`] when the fields differ in size.
    pub fn average_endpoint_error(&self, truth: &FlowField) -> crate::Result<f32> {
        if self.width() != truth.width() || self.height() != truth.height() {
            return Err(FlowError::frame_mismatch(format!(
                "{}x{} vs {}x{}",
                self.width(),
                self.height(),
                truth.width(),
                truth.height()
            )));
        }
        let n = self.width() * self.height();
        if n == 0 {
            return Ok(0.0);
        }
        let mut total = 0.0f64;
        for y in 0..self.height() {
            for x in 0..self.width() {
                let (u1, v1) = self.at(x, y);
                let (u2, v2) = truth.at(x, y);
                total += (((u1 - u2).powi(2) + (v1 - v2).powi(2)) as f64).sqrt();
            }
        }
        Ok((total / n as f64) as f32)
    }

    /// Median of the horizontal component (robust summary used in tests).
    pub fn median_u(&self) -> f32 {
        let mut scratch = Vec::new();
        self.median_u_with(&mut scratch)
    }

    /// Median of the vertical component.
    pub fn median_v(&self) -> f32 {
        let mut scratch = Vec::new();
        self.median_v_with(&mut scratch)
    }

    /// [`FlowField::median_u`] reusing a caller-owned selection buffer
    /// (allocation-free once the buffer is warm — the adaptive key-frame
    /// policy evaluates this every frame).
    pub fn median_u_with(&self, scratch: &mut Vec<f32>) -> f32 {
        median(self.u.as_slice(), scratch)
    }

    /// [`FlowField::median_v`] reusing a caller-owned selection buffer.
    pub fn median_v_with(&self, scratch: &mut Vec<f32>) -> f32 {
        median(self.v.as_slice(), scratch)
    }

    /// Scales both components (used when up-sampling between pyramid levels).
    pub fn scale(&self, factor: f32) -> FlowField {
        FlowField {
            u: Image::from_fn(self.width(), self.height(), |x, y| self.u.at(x, y) * factor),
            v: Image::from_fn(self.width(), self.height(), |x, y| self.v.at(x, y) * factor),
        }
    }

    /// Resamples the field to a new resolution, scaling the displacement
    /// magnitudes by the resolution ratio.
    pub fn resample(&self, new_width: usize, new_height: usize) -> FlowField {
        let mut out = FlowField::zeros(0, 0);
        self.resample_into(new_width, new_height, &mut out);
        out
    }

    /// [`FlowField::resample`] writing into a reusable output field (which
    /// must be a different object than `self`).
    pub fn resample_into(&self, new_width: usize, new_height: usize, out: &mut FlowField) {
        if self.width() == 0 || self.height() == 0 || new_width == 0 || new_height == 0 {
            out.reset_zeros(new_width, new_height);
            return;
        }
        let sx = new_width as f32 / self.width() as f32;
        let sy = new_height as f32 / self.height() as f32;
        // Every pixel is assigned below, so the planes need no fill.
        out.reshape_scratch(new_width, new_height);
        for y in 0..new_height {
            for x in 0..new_width {
                let u = self.u.sample_bilinear(x as f32 / sx, y as f32 / sy) * sx;
                let v = self.v.sample_bilinear(x as f32 / sx, y as f32 / sy) * sy;
                out.set(x, y, u, v);
            }
        }
    }
}

/// Median by `select_nth_unstable` — O(n) instead of the O(n log n) full
/// sort, which matters because the adaptive key-frame policy evaluates it on
/// every frame.  The selected order statistic is identical to
/// `sorted[len / 2]` under the same comparator.  The selection mutates a
/// copy of the values held in the caller's reusable `scratch` buffer.
fn median(values: &[f32], scratch: &mut Vec<f32>) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    scratch.clear();
    scratch.extend_from_slice(values);
    let mid = scratch.len() / 2;
    let (_, nth, _) = scratch.select_nth_unstable_by(mid, |a, b| {
        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
    });
    *nth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let f = FlowField::constant(4, 3, 1.0, -2.0);
        assert_eq!(f.width(), 4);
        assert_eq!(f.height(), 3);
        assert_eq!(f.at(2, 1), (1.0, -2.0));
        assert_eq!(f.median_u(), 1.0);
        assert_eq!(f.median_v(), -2.0);
    }

    #[test]
    fn from_components_validates_sizes() {
        let u = Image::zeros(4, 4);
        let v = Image::zeros(4, 3);
        assert!(FlowField::from_components(u.clone(), v).is_err());
        assert!(FlowField::from_components(u.clone(), u).is_ok());
    }

    #[test]
    fn set_and_sample() {
        let mut f = FlowField::zeros(4, 4);
        f.set(2, 2, 3.0, 4.0);
        assert_eq!(f.at(2, 2), (3.0, 4.0));
        let (u, v) = f.sample(2.0, 2.0);
        assert_eq!((u, v), (3.0, 4.0));
    }

    #[test]
    fn endpoint_error_of_identical_fields_is_zero() {
        let f = FlowField::constant(8, 8, 0.5, -0.5);
        assert_eq!(f.average_endpoint_error(&f).unwrap(), 0.0);
        let g = FlowField::constant(8, 8, 3.5, 3.5);
        let err = f.average_endpoint_error(&g).unwrap();
        assert!((err - 5.0).abs() < 1e-5); // 3-4-5 triangle
        assert!(f.average_endpoint_error(&FlowField::zeros(4, 4)).is_err());
    }

    #[test]
    fn scale_multiplies_components() {
        let f = FlowField::constant(4, 4, 1.0, 2.0);
        let g = f.scale(2.0);
        assert_eq!(g.at(0, 0), (2.0, 4.0));
    }

    #[test]
    fn resample_scales_displacements_with_resolution() {
        let f = FlowField::constant(8, 8, 1.0, 1.0);
        let g = f.resample(16, 16);
        assert_eq!(g.width(), 16);
        assert_eq!(g.at(8, 8), (2.0, 2.0));
        let empty = FlowField::zeros(0, 0).resample(4, 4);
        assert_eq!(empty.at(0, 0), (0.0, 0.0));
    }

    #[test]
    fn median_of_empty_field() {
        let f = FlowField::zeros(0, 0);
        assert_eq!(f.median_u(), 0.0);
    }
}
