//! Exhaustive block-matching optical flow baseline.
//!
//! The ASV paper discusses block matching (BM) as a motion-estimation
//! candidate and rejects it for correspondence *propagation* because it only
//! produces block-granular motion (Sec. 3.3); it keeps BM for the local
//! correspondence *search*.  This module implements the block-granular motion
//! estimator both as a baseline to compare Farneback against and as a simple,
//! independent cross-check in tests.

use crate::field::{FlowError, FlowField};
use crate::Result;
use asv_image::cost::{block_sad, BlockSpec};
use asv_image::Image;
use serde::{Deserialize, Serialize};

/// Parameters of the block-matching flow estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockFlowParams {
    /// Block size (half-width) used for matching.
    pub block: BlockSpec,
    /// Search radius in pixels in both directions.
    pub search_radius: usize,
    /// Step between estimated blocks; all pixels in a step×step tile share the
    /// same motion vector.
    pub step: usize,
}

impl Default for BlockFlowParams {
    fn default() -> Self {
        Self {
            block: BlockSpec::new(3),
            search_radius: 7,
            step: 4,
        }
    }
}

/// Estimates block-granular motion from `frame0` to `frame1` by exhaustive
/// SAD search.
///
/// # Errors
///
/// Returns [`FlowError::FrameMismatch`] when the frames differ in size and
/// [`FlowError::InvalidParameter`] when `step == 0` or the frames are empty.
pub fn block_matching_flow(
    frame0: &Image,
    frame1: &Image,
    params: &BlockFlowParams,
) -> Result<FlowField> {
    if frame0.width() != frame1.width() || frame0.height() != frame1.height() {
        return Err(FlowError::frame_mismatch(format!(
            "{}x{} vs {}x{}",
            frame0.width(),
            frame0.height(),
            frame1.width(),
            frame1.height()
        )));
    }
    if frame0.is_empty() {
        return Err(FlowError::invalid_parameter(
            "cannot compute flow of empty frames",
        ));
    }
    if params.step == 0 {
        return Err(FlowError::invalid_parameter("step must be non-zero"));
    }
    let width = frame0.width();
    let height = frame0.height();
    let mut flow = FlowField::zeros(width, height);
    let r = params.search_radius as isize;
    let mut by = 0;
    while by < height {
        let mut bx = 0;
        while bx < width {
            let cx = (bx + params.step / 2).min(width - 1) as isize;
            let cy = (by + params.step / 2).min(height - 1) as isize;
            let mut best_cost = f32::INFINITY;
            let mut best = (0isize, 0isize);
            for dy in -r..=r {
                for dx in -r..=r {
                    let cost = block_sad(frame0, frame1, cx, cy, cx + dx, cy + dy, params.block);
                    // Prefer smaller displacements on ties for a stable result.
                    let tie_break = (dx * dx + dy * dy) as f32 * 1e-6;
                    if cost + tie_break < best_cost {
                        best_cost = cost + tie_break;
                        best = (dx, dy);
                    }
                }
            }
            for y in by..(by + params.step).min(height) {
                for x in bx..(bx + params.step).min(width) {
                    flow.set(x, y, best.0 as f32, best.1 as f32);
                }
            }
            bx += params.step;
        }
        by += params.step;
    }
    Ok(flow)
}

/// Arithmetic operations performed by one block-matching flow computation.
pub fn block_flow_op_count(width: usize, height: usize, params: &BlockFlowParams) -> u64 {
    let blocks_x = width.div_ceil(params.step) as u64;
    let blocks_y = height.div_ceil(params.step) as u64;
    let candidates = (2 * params.search_radius as u64 + 1).pow(2);
    let per_candidate = asv_image::cost::sad_ops_per_block(params.block);
    blocks_x * blocks_y * candidates * per_candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_image::warp::translate;

    fn textured(width: usize, height: usize) -> Image {
        Image::from_fn(width, height, |x, y| {
            ((x * 17 + y * 29 + (x * y) % 7) % 31) as f32 / 31.0
        })
    }

    #[test]
    fn recovers_integer_translation() {
        let f0 = textured(48, 32);
        let f1 = translate(&f0, 4, 2);
        let flow = block_matching_flow(&f0, &f1, &BlockFlowParams::default()).unwrap();
        assert_eq!(flow.median_u(), 4.0);
        assert_eq!(flow.median_v(), 2.0);
    }

    #[test]
    fn zero_motion_yields_zero_vectors() {
        let f0 = textured(32, 32);
        let flow = block_matching_flow(&f0, &f0, &BlockFlowParams::default()).unwrap();
        assert_eq!(flow.median_u(), 0.0);
        assert_eq!(flow.median_v(), 0.0);
    }

    #[test]
    fn validates_inputs() {
        let f0 = textured(32, 32);
        let small = textured(16, 32);
        assert!(block_matching_flow(&f0, &small, &BlockFlowParams::default()).is_err());
        let bad = BlockFlowParams {
            step: 0,
            ..BlockFlowParams::default()
        };
        assert!(block_matching_flow(&f0, &f0, &bad).is_err());
        assert!(block_matching_flow(
            &Image::default(),
            &Image::default(),
            &BlockFlowParams::default()
        )
        .is_err());
    }

    #[test]
    fn op_count_scales_with_search_area() {
        let small = block_flow_op_count(
            64,
            64,
            &BlockFlowParams {
                search_radius: 2,
                ..Default::default()
            },
        );
        let large = block_flow_op_count(
            64,
            64,
            &BlockFlowParams {
                search_radius: 8,
                ..Default::default()
            },
        );
        assert!(large > small * 5);
    }
}
