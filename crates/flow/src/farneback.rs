//! Farneback dense optical flow via polynomial expansion.
//!
//! The algorithm follows Farneback's two-frame method (cited by the ASV paper
//! as the motion-estimation component of ISM): every local neighbourhood of
//! each frame is approximated by a quadratic polynomial using a
//! Gaussian-weighted least-squares fit; the displacement field is the one that
//! best explains how the polynomial coefficients move between the two frames.
//!
//! The implementation is deliberately structured as the three stages the paper
//! maps onto the accelerator (Sec. 3.3 and Fig. 8):
//!
//! 1. **Gaussian blur** — the polynomial expansion moments and the
//!    equation-system accumulation are separable Gaussian convolutions
//!    (`asv_image::gaussian`), which the hardware runs on the systolic array.
//! 2. **Matrix update** — a point-wise stage that assembles the 2×2 linear
//!    system `G d = h` from the two expansions and the current flow estimate.
//! 3. **Compute flow** — a point-wise stage that solves the 2×2 system per
//!    pixel.
//!
//! [`FlowOpBreakdown`] reports the arithmetic-operation split between those
//! stages so the performance model can reproduce the paper's "99 % of
//! Farneback is blur + two point-wise stages" claim.

use crate::field::{FlowError, FlowField};
use crate::Result;
use asv_image::gaussian::{blur_in_place, gaussian_kernel, separable_filter_into};
use asv_image::pyramid::Pyramid;
use asv_image::Image;
use asv_trace::{KernelTimings, Stage};
use serde::{Deserialize, Serialize};

/// Tuning parameters of the Farneback flow estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FarnebackParams {
    /// Number of pyramid levels for coarse-to-fine estimation.
    pub pyramid_levels: usize,
    /// Standard deviation of the Gaussian applicability window used by the
    /// polynomial expansion.
    pub poly_sigma: f32,
    /// Standard deviation of the Gaussian used to aggregate the per-pixel
    /// linear systems (the "Gaussian blur" stage).
    pub blur_sigma: f32,
    /// Number of fixed-point iterations per pyramid level.
    pub iterations: usize,
    /// Minimum pyramid level size in pixels.
    pub min_level_size: usize,
}

impl Default for FarnebackParams {
    fn default() -> Self {
        Self {
            pyramid_levels: 3,
            poly_sigma: 1.2,
            blur_sigma: 2.0,
            iterations: 3,
            min_level_size: 12,
        }
    }
}

/// Quadratic polynomial expansion of an image: per pixel the local signal is
/// modelled as `f(δ) ≈ δᵀ A δ + bᵀ δ + c` with `A = [[a11, a12], [a12, a22]]`
/// and `b = [b1, b2]`.
#[derive(Debug, Clone)]
pub struct PolyExpansion {
    a11: Image,
    a12: Image,
    a22: Image,
    b1: Image,
    b2: Image,
}

impl PolyExpansion {
    /// Width of the expanded image.
    pub fn width(&self) -> usize {
        self.a11.width()
    }

    /// Height of the expanded image.
    pub fn height(&self) -> usize {
        self.a11.height()
    }

    /// An empty expansion (0×0 planes, no allocation); populated by
    /// [`polynomial_expansion_into`].
    fn empty() -> Self {
        Self {
            a11: Image::default(),
            a12: Image::default(),
            a22: Image::default(),
            b1: Image::default(),
            b2: Image::default(),
        }
    }
}

/// Kernels and matrices derived purely from the flow parameters, cached so
/// the steady state of a stream never recomputes (or re-allocates) them.
#[derive(Debug)]
struct KernelCache {
    /// Sigma the moment kernels and `ginv` were built for.
    poly_for: Option<f32>,
    /// 1-D moment filters `w(x) · x^p` for p = 0, 1, 2.
    k0: Vec<f32>,
    k1: Vec<f32>,
    k2: Vec<f32>,
    ginv: [[f64; 6]; 6],
    /// Sigma the aggregation-blur kernel was built for.
    blur_for: Option<f32>,
    blur: Vec<f32>,
    /// Sigma-1.0 kernel of the pyramid's level-to-level smoothing.
    pyramid: Vec<f32>,
}

impl KernelCache {
    fn empty() -> Self {
        Self {
            poly_for: None,
            k0: Vec::new(),
            k1: Vec::new(),
            k2: Vec::new(),
            ginv: [[0.0; 6]; 6],
            blur_for: None,
            blur: Vec::new(),
            pyramid: Vec::new(),
        }
    }

    /// Rebuilds the moment kernels and the normal-matrix inverse when
    /// `sigma` differs from the cached one.
    fn ensure_poly(&mut self, sigma: f32) {
        if self.poly_for == Some(sigma) {
            return;
        }
        let kernel = gaussian_kernel(sigma);
        let radius = (kernel.len() / 2) as isize;
        self.k1 = kernel
            .iter()
            .enumerate()
            .map(|(i, &w)| w * (i as isize - radius) as f32)
            .collect(); // lint: alloc-ok(kernel-cache fill, amortized)
        self.k2 = kernel
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let d = (i as isize - radius) as f32;
                w * d * d
            })
            .collect(); // lint: alloc-ok(kernel-cache fill, amortized)
                        // The zeroth moment filter is the kernel itself; it is moved, not
                        // cloned.
        self.k0 = kernel;
        self.ginv = normal_matrix_inverse(sigma);
        self.poly_for = Some(sigma);
    }

    /// Rebuilds the aggregation-blur kernel when `sigma` differs from the
    /// cached one.
    fn ensure_blur(&mut self, sigma: f32) {
        if self.blur_for == Some(sigma) {
            return;
        }
        self.blur = gaussian_kernel(sigma);
        self.blur_for = Some(sigma);
    }

    /// Builds the pyramid smoothing kernel once.
    fn ensure_pyramid(&mut self) {
        if self.pyramid.is_empty() {
            self.pyramid = gaussian_kernel(1.0);
        }
    }
}

/// Reusable scratch for one Farneback flow estimation: pyramids, polynomial
/// expansions, the per-iteration matrix/blur planes and the flow double
/// buffer.
///
/// A fresh workspace performs no allocation; the first
/// [`farneback_flow_with`] call sizes every buffer and subsequent calls on
/// same-sized frames reuse them, making steady-state flow estimation
/// allocation-free.  Hold one workspace per camera view (the ISM pipeline
/// holds two, one for the left and one for the right stream).
#[derive(Debug)]
pub struct FlowWorkspace {
    kernels: KernelCache,
    pyr0: Pyramid,
    pyr1: Pyramid,
    exp0: PolyExpansion,
    exp1: PolyExpansion,
    /// The six weighted moment projections of the expansion.
    moments: [Image; 6],
    /// Interleaved per-pixel solve buffer of the parallel expansion driver.
    solve: Vec<[f32; 5]>,
    tmp: Image,
    tmp2: Image,
    g11: Image,
    g12: Image,
    g22: Image,
    h1: Image,
    h2: Image,
    /// Flow double buffer; after a successful [`farneback_flow_with`] call
    /// `flow_a` holds the final estimate.
    flow_a: FlowField,
    flow_b: FlowField,
    /// Per-call kernel timings, staged here so they survive execution on a
    /// pool worker thread (the parallel build runs the two flow directions
    /// under `rayon::join`) and can be harvested by the calling thread's
    /// tracer.  Cleared at the start of every [`farneback_flow_with`] call.
    pub timings: KernelTimings,
}

impl FlowWorkspace {
    /// Creates an empty workspace (no allocation until first use).
    pub fn new() -> Self {
        Self {
            kernels: KernelCache::empty(),
            pyr0: Pyramid::empty(),
            pyr1: Pyramid::empty(),
            exp0: PolyExpansion::empty(),
            exp1: PolyExpansion::empty(),
            moments: std::array::from_fn(|_| Image::default()),
            solve: Vec::new(),
            tmp: Image::default(),
            tmp2: Image::default(),
            g11: Image::default(),
            g12: Image::default(),
            g22: Image::default(),
            h1: Image::default(),
            h2: Image::default(),
            flow_a: FlowField::zeros(0, 0),
            flow_b: FlowField::zeros(0, 0),
            timings: KernelTimings::new(),
        }
    }

    /// The flow estimated by the most recent [`farneback_flow_with`] call.
    pub fn flow(&self) -> &FlowField {
        &self.flow_a
    }

    /// Moves the most recent flow out of the workspace (leaving an empty
    /// field behind; the next call re-warms the buffer).
    pub fn take_flow(&mut self) -> FlowField {
        std::mem::replace(&mut self.flow_a, FlowField::zeros(0, 0))
    }
}

impl Default for FlowWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Inverts the symmetric 6×6 normal-equation matrix of the Gaussian-weighted
/// quadratic basis.  Because the Gaussian window is separable and symmetric,
/// the matrix is sparse and can be inverted in closed form through small
/// blocks; for clarity we instead build it explicitly and invert numerically
/// with Gauss-Jordan elimination (it is only 6×6 and computed once per call).
fn normal_matrix_inverse(sigma: f32) -> [[f64; 6]; 6] {
    let kernel = gaussian_kernel(sigma);
    let radius = (kernel.len() / 2) as isize;
    // Basis order: [1, x, y, x^2, y^2, xy].
    let mut g = [[0.0f64; 6]; 6];
    for (iy, wy) in kernel.iter().enumerate() {
        let dy = iy as isize - radius;
        for (ix, wx) in kernel.iter().enumerate() {
            let dx = ix as isize - radius;
            let w = (*wy as f64) * (*wx as f64);
            let b = basis(dx as f64, dy as f64);
            for j in 0..6 {
                for k in 0..6 {
                    g[j][k] += w * b[j] * b[k];
                }
            }
        }
    }
    invert6(&g)
}

fn basis(x: f64, y: f64) -> [f64; 6] {
    [1.0, x, y, x * x, y * y, x * y]
}

/// Gauss-Jordan inversion of a 6×6 matrix.  Panics only if the matrix is
/// singular, which cannot happen for a Gaussian window with positive sigma.
fn invert6(m: &[[f64; 6]; 6]) -> [[f64; 6]; 6] {
    let mut a = *m;
    let mut inv = [[0.0f64; 6]; 6];
    for (i, row) in inv.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for col in 0..6 {
        // Partial pivoting for numerical stability.
        let mut pivot = col;
        for row in col + 1..6 {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p = a[col][col];
        assert!(p.abs() > 1e-12, "normal matrix is singular");
        for k in 0..6 {
            a[col][k] /= p;
            inv[col][k] /= p;
        }
        for row in 0..6 {
            if row == col {
                continue;
            }
            let f = a[row][col];
            if f == 0.0 {
                continue;
            }
            for k in 0..6 {
                a[row][k] -= f * a[col][k];
                inv[row][k] -= f * inv[col][k];
            }
        }
    }
    inv
}

/// Computes the quadratic polynomial expansion of an image.
///
/// # Errors
///
/// Returns [`FlowError::InvalidParameter`] for an empty image or non-positive
/// sigma.
pub fn polynomial_expansion(image: &Image, sigma: f32) -> Result<PolyExpansion> {
    let mut kernels = KernelCache::empty();
    let mut moments = std::array::from_fn(|_| Image::default());
    let mut tmp = Image::default();
    let mut solve = Vec::new();
    let mut out = PolyExpansion::empty();
    polynomial_expansion_into(
        image,
        sigma,
        &mut kernels,
        &mut moments,
        &mut tmp,
        &mut solve,
        &mut out,
    )?;
    Ok(out)
}

/// [`polynomial_expansion`] writing into reusable buffers: the kernel cache,
/// the six moment planes, one convolution intermediate, the interleaved
/// per-pixel solve buffer (used by the parallel driver) and the output
/// expansion.  Identical output, no allocation once the buffers are warm.
#[allow(clippy::too_many_arguments)]
fn polynomial_expansion_into(
    image: &Image,
    sigma: f32,
    kernels: &mut KernelCache,
    moments: &mut [Image; 6],
    tmp: &mut Image,
    solve: &mut Vec<[f32; 5]>,
    out: &mut PolyExpansion,
) -> Result<()> {
    if image.is_empty() {
        return Err(FlowError::invalid_parameter("cannot expand an empty image"));
    }
    if sigma <= 0.0 {
        return Err(FlowError::invalid_parameter("poly_sigma must be positive"));
    }
    kernels.ensure_poly(sigma);
    let (k0, k1, k2) = (&kernels.k0, &kernels.k1, &kernels.k2);

    // Projection of the image on the weighted basis: v_k = Σ w · b_k · f,
    // in basis order [1, x, y, x², y², xy].
    let [v0, v1, v2, v3, v4, v5] = moments;
    separable_filter_into(image, k0, k0, tmp, v0);
    separable_filter_into(image, k1, k0, tmp, v1);
    separable_filter_into(image, k0, k1, tmp, v2);
    separable_filter_into(image, k2, k0, tmp, v3);
    separable_filter_into(image, k0, k2, tmp, v4);
    separable_filter_into(image, k1, k1, tmp, v5);

    let ginv = kernels.ginv;
    let width = image.width();
    let height = image.height();
    // Every plane pixel is assigned by the solve below, so no fill.
    out.b1.reshape_scratch(width, height);
    out.b2.reshape_scratch(width, height);
    out.a11.reshape_scratch(width, height);
    out.a22.reshape_scratch(width, height);
    out.a12.reshape_scratch(width, height);

    // Point-wise 6x6 solve per pixel. Rows are independent; with the
    // `parallel` feature they are computed on the rayon pool (this stage is
    // the non-convolution hot spot of the expansion). The per-pixel
    // arithmetic is identical in both drivers.
    let moments: [&Image; 6] = [v0, v1, v2, v3, v4, v5];
    let solve_pixel = |rows: &[&[f32]; 6], x: usize| -> [f32; 5] {
        let mut r = [0.0f64; 6];
        for (j, rj) in r.iter_mut().enumerate() {
            for (k, row) in rows.iter().enumerate() {
                *rj += ginv[j][k] * row[x] as f64;
            }
        }
        // r = [c, b1, b2, a11, a22, 2*a12-ish]; basis order
        // [1, x, y, x², y², xy].
        [
            r[1] as f32,
            r[2] as f32,
            r[3] as f32,
            r[4] as f32,
            (r[5] / 2.0) as f32,
        ]
    };

    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        // Rows are solved on the pool straight into the retained interleaved
        // buffer (one `[f32; 5]` cell per pixel), so the steady state of the
        // parallel build is allocation-free too.
        solve.resize(width * height, [0.0; 5]);
        solve
            .par_chunks_mut(width)
            .enumerate()
            .for_each(|(y, row)| {
                let rows: [&[f32]; 6] =
                    std::array::from_fn(|m| &moments[m].as_slice()[y * width..][..width]);
                for (x, cell) in row.iter_mut().enumerate() {
                    *cell = solve_pixel(&rows, x);
                }
            });
        // Single de-interleaving pass into the five output planes.
        let mut planes = [
            out.b1.as_mut_slice(),
            out.b2.as_mut_slice(),
            out.a11.as_mut_slice(),
            out.a22.as_mut_slice(),
            out.a12.as_mut_slice(),
        ];
        for (y, row) in solve.chunks_exact(width).enumerate() {
            let base = y * width;
            for (x, cell) in row.iter().enumerate() {
                for (plane, value) in planes.iter_mut().zip(cell) {
                    plane[base + x] = *value;
                }
            }
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = solve;
        // Sequential driver: solve straight into the output planes, with no
        // intermediate row vectors (this keeps the steady state of the
        // sequential build allocation-free).
        let mut planes = [
            out.b1.as_mut_slice(),
            out.b2.as_mut_slice(),
            out.a11.as_mut_slice(),
            out.a22.as_mut_slice(),
            out.a12.as_mut_slice(),
        ];
        for y in 0..height {
            let rows: [&[f32]; 6] =
                std::array::from_fn(|m| &moments[m].as_slice()[y * width..][..width]);
            let base = y * width;
            for x in 0..width {
                let cell = solve_pixel(&rows, x);
                for (plane, value) in planes.iter_mut().zip(&cell) {
                    plane[base + x] = *value;
                }
            }
        }
    }
    Ok(())
}

/// One Farneback displacement refinement at a single scale, writing into
/// reusable buffers.
///
/// Implements the matrix-update stage (assembling `G`, `h` per pixel), the
/// Gaussian-blur aggregation and the compute-flow stage (solving the 2×2
/// system) described in the module documentation.  `g11`..`h2` are the five
/// matrix planes (blurred in place with `tmp` as intermediate) and `out`
/// receives the refined flow.
#[allow(clippy::too_many_arguments)]
fn refine_displacement_into(
    exp0: &PolyExpansion,
    exp1: &PolyExpansion,
    prior: &FlowField,
    blur_kernel: &[f32],
    g11: &mut Image,
    g12: &mut Image,
    g22: &mut Image,
    h1: &mut Image,
    h2: &mut Image,
    tmp: &mut Image,
    out: &mut FlowField,
) {
    let width = exp0.width();
    let height = exp0.height();
    // The matrix-update loop assigns every pixel of all five planes.
    g11.reshape_scratch(width, height);
    g12.reshape_scratch(width, height);
    g22.reshape_scratch(width, height);
    h1.reshape_scratch(width, height);
    h2.reshape_scratch(width, height);

    // --- Matrix update (point-wise) ---
    for y in 0..height {
        for x in 0..width {
            let (du, dv) = prior.at(x, y);
            let sx = x as f32 + du;
            let sy = y as f32 + dv;
            // Average the quadratic terms of the two expansions; sample the
            // second frame's expansion at the displaced position.
            let a11 = 0.5 * (exp0.a11.at(x, y) + exp1.a11.sample_bilinear(sx, sy));
            let a12 = 0.5 * (exp0.a12.at(x, y) + exp1.a12.sample_bilinear(sx, sy));
            let a22 = 0.5 * (exp0.a22.at(x, y) + exp1.a22.sample_bilinear(sx, sy));
            let db1 =
                -0.5 * (exp1.b1.sample_bilinear(sx, sy) - exp0.b1.at(x, y)) + a11 * du + a12 * dv;
            let db2 =
                -0.5 * (exp1.b2.sample_bilinear(sx, sy) - exp0.b2.at(x, y)) + a12 * du + a22 * dv;
            // Normal equations of A d = Δb.
            g11.set(x, y, a11 * a11 + a12 * a12);
            g12.set(x, y, a11 * a12 + a12 * a22);
            g22.set(x, y, a12 * a12 + a22 * a22);
            h1.set(x, y, a11 * db1 + a12 * db2);
            h2.set(x, y, a12 * db1 + a22 * db2);
        }
    }

    // --- Gaussian blur aggregation (convolution) ---
    blur_in_place(g11, blur_kernel, tmp);
    blur_in_place(g12, blur_kernel, tmp);
    blur_in_place(g22, blur_kernel, tmp);
    blur_in_place(h1, blur_kernel, tmp);
    blur_in_place(h2, blur_kernel, tmp);

    // --- Compute flow (point-wise 2x2 solve; every pixel assigned) ---
    out.reshape_scratch(width, height);
    for y in 0..height {
        for x in 0..width {
            let a = g11.at(x, y);
            let b = g12.at(x, y);
            let c = g22.at(x, y);
            let det = a * c - b * b;
            if det.abs() < 1e-9 {
                let (pu, pv) = prior.at(x, y);
                out.set(x, y, pu, pv);
                continue;
            }
            let r1 = h1.at(x, y);
            let r2 = h2.at(x, y);
            let du = (c * r1 - b * r2) / det;
            let dv = (a * r2 - b * r1) / det;
            out.set(x, y, du, dv);
        }
    }
}

/// Estimates the dense optical flow from `frame0` to `frame1`.
///
/// # Errors
///
/// Returns [`FlowError::FrameMismatch`] when the two frames differ in size
/// and [`FlowError::InvalidParameter`] for degenerate parameters.
pub fn farneback_flow(
    frame0: &Image,
    frame1: &Image,
    params: &FarnebackParams,
) -> Result<FlowField> {
    let mut ws = FlowWorkspace::new();
    farneback_flow_with(&mut ws, frame0, frame1, params)?;
    Ok(ws.take_flow())
}

/// [`farneback_flow`] threading a reusable [`FlowWorkspace`]: identical
/// output, zero heap allocations once the workspace is warm (same-sized
/// frames).  The estimated flow is left in the workspace, readable through
/// [`FlowWorkspace::flow`].
///
/// # Errors
///
/// Same conditions as [`farneback_flow`].
pub fn farneback_flow_with(
    ws: &mut FlowWorkspace,
    frame0: &Image,
    frame1: &Image,
    params: &FarnebackParams,
) -> Result<()> {
    if frame0.width() != frame1.width() || frame0.height() != frame1.height() {
        // lint: alloc-ok(error path)
        return Err(FlowError::frame_mismatch(format!(
            "{}x{} vs {}x{}",
            frame0.width(),
            frame0.height(),
            frame1.width(),
            frame1.height()
        )));
    }
    if frame0.is_empty() {
        return Err(FlowError::invalid_parameter(
            "cannot compute flow of empty frames",
        ));
    }
    if params.iterations == 0 || params.pyramid_levels == 0 {
        return Err(FlowError::invalid_parameter(
            "iterations and pyramid_levels must be non-zero",
        ));
    }
    ws.timings.clear();
    ws.kernels.ensure_pyramid();
    let pyramid_started = std::time::Instant::now();
    ws.pyr0
        .rebuild(
            frame0,
            params.pyramid_levels,
            params.min_level_size,
            &ws.kernels.pyramid,
            &mut ws.tmp,
            &mut ws.tmp2,
        )
        .map_err(FlowError::invalid_parameter)?;
    ws.pyr1
        .rebuild(
            frame1,
            params.pyramid_levels,
            params.min_level_size,
            &ws.kernels.pyramid,
            &mut ws.tmp,
            &mut ws.tmp2,
        )
        .map_err(FlowError::invalid_parameter)?;
    ws.timings.record(
        Stage::PyramidBuild,
        pyramid_started,
        pyramid_started.elapsed(),
        1,
    );
    ws.kernels.ensure_blur(params.blur_sigma);
    let levels = ws.pyr0.num_levels().min(ws.pyr1.num_levels());

    let mut first = true;
    for level in (0..levels).rev() {
        // Split the workspace into its disjoint pieces so each stage can
        // borrow what it needs.
        let FlowWorkspace {
            kernels,
            pyr0,
            pyr1,
            exp0,
            exp1,
            moments,
            solve,
            tmp,
            tmp2,
            g11,
            g12,
            g22,
            h1,
            h2,
            flow_a,
            flow_b,
            ..
        } = ws;
        let im0 = pyr0.level(level);
        let im1 = pyr1.level(level);
        polynomial_expansion_into(im0, params.poly_sigma, kernels, moments, tmp, solve, exp0)?;
        polynomial_expansion_into(im1, params.poly_sigma, kernels, moments, tmp, solve, exp1)?;
        if first {
            flow_a.reset_zeros(im0.width(), im0.height());
            first = false;
        } else {
            flow_a.resample_into(im0.width(), im0.height(), flow_b);
            std::mem::swap(flow_a, flow_b);
        }
        for _ in 0..params.iterations {
            refine_displacement_into(
                exp0,
                exp1,
                flow_a,
                &kernels.blur,
                g11,
                g12,
                g22,
                h1,
                h2,
                tmp2,
                flow_b,
            );
            std::mem::swap(flow_a, flow_b);
        }
    }
    // The finest level's flow sits in `flow_a` after the last swap; both
    // double-buffer fields keep their full-resolution capacity for the next
    // call, so the steady state never re-allocates.
    Ok(())
}

/// Arithmetic-operation breakdown of one Farneback flow computation, split
/// into the three stages the ASV hardware distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowOpBreakdown {
    /// Operations spent in Gaussian-blur style separable convolutions.
    pub blur_ops: u64,
    /// Operations spent solving the polynomial-expansion normal equations
    /// (a per-pixel 6×6 back-substitution, expressible as a 1×1 convolution).
    pub expansion_solve_ops: u64,
    /// Operations spent in the point-wise matrix-update stage.
    pub matrix_update_ops: u64,
    /// Operations spent in the point-wise compute-flow stage.
    pub compute_flow_ops: u64,
}

impl FlowOpBreakdown {
    /// Total operations across all stages.
    pub fn total(&self) -> u64 {
        self.blur_ops + self.expansion_solve_ops + self.matrix_update_ops + self.compute_flow_ops
    }

    /// Fraction of operations that are convolutions (blur).
    pub fn blur_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.blur_ops as f64 / self.total() as f64
        }
    }
}

/// Analytical operation count of [`farneback_flow`] for a frame of the given
/// size, mirroring the loop structure of the implementation.
pub fn farneback_op_breakdown(
    width: usize,
    height: usize,
    params: &FarnebackParams,
) -> FlowOpBreakdown {
    let mut blur = 0u64;
    let mut expansion = 0u64;
    let mut matrix = 0u64;
    let mut solve = 0u64;
    let poly_taps = gaussian_kernel(params.poly_sigma).len() as u64;
    let blur_taps = gaussian_kernel(params.blur_sigma).len() as u64;
    let mut w = width as u64;
    let mut h = height as u64;
    for _level in 0..params.pyramid_levels {
        if w < params.min_level_size as u64 || h < params.min_level_size as u64 {
            break;
        }
        let pixels = w * h;
        // Polynomial expansion: 6 separable moment filters per frame, 2 frames,
        // each separable filter is 2 passes of `taps` MACs per pixel, plus the
        // 6x6 back-substitution (36 MACs) per pixel and frame.
        blur += 2 * 6 * 2 * poly_taps * pixels;
        expansion += 2 * 36 * pixels;
        for _iter in 0..params.iterations {
            // Matrix update: ~30 arithmetic ops per pixel.
            matrix += 30 * pixels;
            // Aggregation: 5 separable blurs.
            blur += 5 * 2 * blur_taps * pixels;
            // Compute flow: 2x2 solve, ~12 ops per pixel.
            solve += 12 * pixels;
        }
        w /= 2;
        h /= 2;
    }
    FlowOpBreakdown {
        blur_ops: blur,
        expansion_solve_ops: expansion,
        matrix_update_ops: matrix,
        compute_flow_ops: solve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_image::warp::translate;

    fn textured(width: usize, height: usize) -> Image {
        Image::from_fn(width, height, |x, y| {
            let fx = x as f32 * 0.35;
            let fy = y as f32 * 0.23;
            (fx.sin() * fy.cos() + ((x * 7 + y * 13) % 11) as f32 * 0.05) * 0.5 + 0.5
        })
    }

    #[test]
    fn normal_matrix_inverse_is_inverse() {
        let kernel_sigma = 1.2;
        let ginv = normal_matrix_inverse(kernel_sigma);
        // Rebuild G and check G * Ginv ≈ I.
        let kernel = gaussian_kernel(kernel_sigma);
        let radius = (kernel.len() / 2) as isize;
        let mut g = [[0.0f64; 6]; 6];
        for (iy, wy) in kernel.iter().enumerate() {
            for (ix, wx) in kernel.iter().enumerate() {
                let b = basis((ix as isize - radius) as f64, (iy as isize - radius) as f64);
                for j in 0..6 {
                    for k in 0..6 {
                        g[j][k] += (*wy as f64) * (*wx as f64) * b[j] * b[k];
                    }
                }
            }
        }
        // `j` walks columns of `ginv`, so an iterator form would obscure the
        // matrix product being checked.
        #[allow(clippy::needless_range_loop)]
        for (i, grow) in g.iter().enumerate() {
            for j in 0..6 {
                let mut acc = 0.0;
                for (k, gik) in grow.iter().enumerate() {
                    acc += gik * ginv[k][j];
                }
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((acc - expected).abs() < 1e-6, "({i},{j}) = {acc}");
            }
        }
    }

    #[test]
    fn expansion_of_linear_ramp_recovers_gradient() {
        // f(x, y) = 2x + 3y has b = (2, 3) and A = 0 in the interior.
        let img = Image::from_fn(32, 32, |x, y| 2.0 * x as f32 + 3.0 * y as f32);
        let exp = polynomial_expansion(&img, 1.2).unwrap();
        assert!((exp.b1.at(16, 16) - 2.0).abs() < 1e-3);
        assert!((exp.b2.at(16, 16) - 3.0).abs() < 1e-3);
        assert!(exp.a11.at(16, 16).abs() < 1e-3);
        assert!(exp.a22.at(16, 16).abs() < 1e-3);
    }

    #[test]
    fn expansion_of_quadratic_recovers_curvature() {
        // f(x, y) = (x - 16)^2 has a11 = 1 in the interior.
        let img = Image::from_fn(32, 32, |x, _| {
            let d = x as f32 - 16.0;
            d * d
        });
        let exp = polynomial_expansion(&img, 1.5).unwrap();
        assert!((exp.a11.at(16, 16) - 1.0).abs() < 1e-2);
        assert!(exp.a22.at(16, 16).abs() < 1e-2);
    }

    #[test]
    fn expansion_rejects_bad_inputs() {
        assert!(polynomial_expansion(&Image::default(), 1.0).is_err());
        assert!(polynomial_expansion(&Image::filled(8, 8, 1.0), 0.0).is_err());
    }

    #[test]
    fn flow_recovers_horizontal_translation() {
        let frame0 = textured(64, 48);
        let frame1 = translate(&frame0, 3, 0);
        let flow = farneback_flow(&frame0, &frame1, &FarnebackParams::default()).unwrap();
        assert!(
            (flow.median_u() - 3.0).abs() < 1.0,
            "median u = {}",
            flow.median_u()
        );
        assert!(
            flow.median_v().abs() < 1.0,
            "median v = {}",
            flow.median_v()
        );
    }

    #[test]
    fn flow_recovers_diagonal_translation() {
        let frame0 = textured(64, 64);
        let frame1 = translate(&frame0, 2, 1);
        let flow = farneback_flow(&frame0, &frame1, &FarnebackParams::default()).unwrap();
        assert!(
            (flow.median_u() - 2.0).abs() < 1.0,
            "median u = {}",
            flow.median_u()
        );
        assert!(
            (flow.median_v() - 1.0).abs() < 1.0,
            "median v = {}",
            flow.median_v()
        );
    }

    #[test]
    fn zero_motion_produces_near_zero_flow() {
        let frame = textured(48, 48);
        let flow = farneback_flow(&frame, &frame, &FarnebackParams::default()).unwrap();
        assert!(flow.median_u().abs() < 0.1);
        assert!(flow.median_v().abs() < 0.1);
    }

    #[test]
    fn flow_validates_inputs() {
        let a = Image::filled(32, 32, 0.0);
        let b = Image::filled(16, 32, 0.0);
        assert!(farneback_flow(&a, &b, &FarnebackParams::default()).is_err());
        let bad = FarnebackParams {
            iterations: 0,
            ..FarnebackParams::default()
        };
        assert!(farneback_flow(&a, &a, &bad).is_err());
        assert!(farneback_flow(
            &Image::default(),
            &Image::default(),
            &FarnebackParams::default()
        )
        .is_err());
    }

    #[test]
    fn op_breakdown_is_dominated_by_conv_and_pointwise() {
        let b = farneback_op_breakdown(960, 540, &FarnebackParams::default());
        assert!(b.total() > 0);
        // The paper: 99% of Farneback is Gaussian blur + the two point-wise
        // stages; in this breakdown that is all of the work, with blur taking
        // the majority share.
        assert!(b.blur_fraction() > 0.5);
        // qHD non-key-frame flow cost is tens of millions of operations, not
        // billions (the DNN costs 10^2-10^4 x more).
        assert!(b.total() < 2_000_000_000);
    }
}
