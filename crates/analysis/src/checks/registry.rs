//! `ASV-R001`..`ASV-R007`: registry consistency between code, README, the
//! golden scrape test, and the knob registry module.
//!
//! Three registries drift silently in a growing system: the `ASV_*`
//! environment knobs, the `asv_*` Prometheus metric families, and the
//! wire-protocol constants.  Each has a single documented home (README's
//! "Environment knobs" table, README's observability table + the golden
//! scrape test, README's distribution section) and — for knobs — a single
//! in-code home (`crates/runtime/src/knobs.rs`).  This pass cross-checks
//! all of them in both directions.

use crate::model;
use crate::scan::TokKind;
use crate::{AnalyzerConfig, Finding, Workspace};
use std::collections::BTreeMap;

/// Whether `s` is exactly an `ASV_*` env-knob name.
fn is_knob_name(s: &str) -> bool {
    s.len() > 4
        && s.starts_with("ASV_")
        && s.bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

/// Extracts `asv_*` metric-family names embedded in `text` (label blocks
/// and histogram suffixes stripped).
fn families_in(text: &str, out: &mut Vec<String>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("asv_") {
        let start = i + at;
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let mut name = &text[start..end];
        for sfx in ["_bucket", "_sum", "_count"] {
            if let Some(stripped) = name.strip_suffix(sfx) {
                if stripped.len() > 4 {
                    name = stripped;
                }
            }
        }
        if name.len() > 4 {
            out.push(name.to_owned());
        }
        i = end.max(start + 4);
    }
}

/// 1-based line ranges of `#[cfg(test)]` spans in file `fi`.
fn test_line_ranges(ws: &Workspace, fi: usize) -> Vec<(usize, usize)> {
    let sf = &ws.files[fi];
    model::test_spans(sf)
        .into_iter()
        .map(|(s, e)| {
            (
                sf.tokens[s].line,
                sf.tokens.get(e).map_or(usize::MAX, |t| t.line),
            )
        })
        .collect()
}

/// Runs the registry consistency checks.
pub fn run(ws: &Workspace, config: &AnalyzerConfig) -> Vec<Finding> {
    let mut findings = Vec::new();

    // ---- Environment knobs (R001 / R002 / R007) ----
    // Knob name -> first read site in production/bin sources.
    let mut code_knobs: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        if !sf.rel.contains("/src/") {
            continue;
        }
        let tests = test_line_ranges(ws, fi);
        for s in &sf.strings {
            if tests.iter().any(|&(a, b)| a <= s.line && s.line <= b) {
                continue;
            }
            if is_knob_name(&s.value) {
                code_knobs.entry(s.value.clone()).or_insert((fi, s.line));
            }
        }
    }
    let knobs_file = ws.file_by_suffix(config.knobs_file);
    let registry_knobs: Vec<String> = knobs_file.map_or_else(Vec::new, |fi| {
        ws.files[fi]
            .strings
            .iter()
            .filter(|s| is_knob_name(&s.value))
            .map(|s| s.value.clone())
            .collect()
    });

    if let Some(readme) = &ws.readme {
        // Knob names in README table rows, with their line numbers.
        let mut readme_knobs: BTreeMap<&str, usize> = BTreeMap::new();
        for (ln, line) in readme.lines().enumerate() {
            if !line.trim_start().starts_with('|') {
                continue;
            }
            for word in line.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
                if is_knob_name(word) {
                    readme_knobs.entry(word).or_insert(ln + 1);
                }
            }
        }
        for (knob, &(fi, line)) in &code_knobs {
            if !readme_knobs.contains_key(knob.as_str()) {
                findings.push(Finding {
                    code: "ASV-R001",
                    file: ws.files[fi].rel.clone(),
                    line,
                    message: format!(
                        "env knob `{knob}` is read here but missing from README's \
                         \"Environment knobs\" table"
                    ),
                });
            }
        }
        for (&knob, &line) in &readme_knobs {
            if !code_knobs.contains_key(knob) {
                findings.push(Finding {
                    code: "ASV-R002",
                    file: config.readme.to_owned(),
                    line,
                    message: format!("README documents env knob `{knob}` but no code reads it"),
                });
            }
        }
    }
    if let Some(kf) = knobs_file {
        for (knob, &(fi, line)) in &code_knobs {
            if fi != kf && !registry_knobs.contains(knob) {
                findings.push(Finding {
                    code: "ASV-R007",
                    file: ws.files[fi].rel.clone(),
                    line,
                    message: format!(
                        "env knob `{knob}` is read outside the knob registry \
                         (`{}`) and is not listed there",
                        config.knobs_file
                    ),
                });
            }
        }
    }

    // ---- Prometheus families (R003 / R004 / R005) ----
    if let Some(efi) = ws.file_by_suffix(config.export_file) {
        let tests = test_line_ranges(ws, efi);
        let mut exported: BTreeMap<String, usize> = BTreeMap::new();
        for s in &ws.files[efi].strings {
            if tests.iter().any(|&(a, b)| a <= s.line && s.line <= b) {
                continue;
            }
            let mut found = Vec::new();
            families_in(&s.value, &mut found);
            for f in found {
                exported.entry(f).or_insert(s.line);
            }
        }
        if let Some(readme) = &ws.readme {
            let mut readme_fams: BTreeMap<String, usize> = BTreeMap::new();
            for (ln, line) in readme.lines().enumerate() {
                if !line.trim_start().starts_with('|') {
                    continue;
                }
                let mut found = Vec::new();
                families_in(line, &mut found);
                for f in found {
                    readme_fams.entry(f).or_insert(ln + 1);
                }
            }
            for (fam, &line) in &exported {
                if !readme.contains(fam.as_str()) {
                    findings.push(Finding {
                        code: "ASV-R003",
                        file: ws.files[efi].rel.clone(),
                        line,
                        message: format!(
                            "metric family `{fam}` is rendered but missing from README's \
                             observability section"
                        ),
                    });
                }
            }
            for (fam, &line) in &readme_fams {
                if !exported.contains_key(fam) {
                    findings.push(Finding {
                        code: "ASV-R004",
                        file: config.readme.to_owned(),
                        line,
                        message: format!(
                            "README documents metric family `{fam}` but `{}` never renders it",
                            config.export_file
                        ),
                    });
                }
            }
        }
        if let Some(golden) = &ws.golden_scrape {
            for (fam, &line) in &exported {
                if !golden.contains(fam.as_str()) {
                    findings.push(Finding {
                        code: "ASV-R005",
                        file: ws.files[efi].rel.clone(),
                        line,
                        message: format!(
                            "metric family `{fam}` is not locked by the golden scrape test \
                             (`{}`)",
                            config.golden_scrape_file
                        ),
                    });
                }
            }
        }
    }

    // ---- Wire protocol constants (R006) ----
    if let (Some(wfi), Some(readme)) = (ws.file_by_suffix(config.wire_file), &ws.readme) {
        let tests = test_line_ranges(ws, wfi);
        for (name, value, line) in wire_consts(ws, wfi) {
            if tests.iter().any(|&(a, b)| a <= line && line <= b) {
                continue;
            }
            let documented = readme.match_indices(&name).any(|(pos, _)| {
                let from = pos + name.len();
                let to = (from + 80).min(readme.len());
                // Clamp to a char boundary for the slice.
                let mut to = to;
                while !readme.is_char_boundary(to) {
                    to -= 1;
                }
                readme[from..to].contains(value.as_str())
            });
            if !documented {
                findings.push(Finding {
                    code: "ASV-R006",
                    file: ws.files[wfi].rel.clone(),
                    line,
                    message: format!(
                        "wire constant `{name}` (= {value}) is not documented with its value \
                         in README"
                    ),
                });
            }
        }
    }

    findings
}

/// Extracts evaluable protocol constants from the wire file:
/// `(name, value-as-string, line)`.  Handles integer literals, products of
/// integer literals, and (byte-)string magics.
fn wire_consts(ws: &Workspace, fi: usize) -> Vec<(String, String, usize)> {
    let toks = &ws.files[fi].tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "const") {
            i += 1;
            continue;
        }
        let name_tok = &toks[i + 1];
        let name = name_tok.text.clone();
        let interesting = name_tok.kind == TokKind::Ident
            && name
                .bytes()
                .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
            && (name.contains("MAGIC")
                || name.contains("VERSION")
                || name.starts_with("MAX_")
                || name.ends_with("_BYTES"));
        if !interesting {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && toks[j].text != "=" && toks[j].text != ";" {
            j += 1;
        }
        if j >= toks.len() || toks[j].text != "=" {
            i += 1;
            continue;
        }
        let start = j + 1;
        while j < toks.len() && toks[j].text != ";" {
            j += 1;
        }
        let value_toks = &toks[start..j.min(toks.len())];
        let mut product: u128 = 1;
        let mut ints = 0usize;
        let mut string = None;
        let mut ok = true;
        for t in value_toks {
            match t.kind {
                TokKind::Num => {
                    let clean = t.text.replace('_', "");
                    let parsed = if let Some(hex) = clean.strip_prefix("0x") {
                        u128::from_str_radix(hex, 16).ok()
                    } else {
                        clean.parse::<u128>().ok()
                    };
                    match parsed {
                        Some(v) => {
                            product = product.saturating_mul(v);
                            ints += 1;
                        }
                        None => ok = false,
                    }
                }
                TokKind::Str => string = Some(t.text.clone()),
                TokKind::Punct if t.text == "*" => {} // product or deref of a magic
                _ => ok = false,
            }
        }
        if ok {
            if let Some(s) = string {
                out.push((name, s, name_tok.line));
            } else if ints > 0 {
                out.push((name, product.to_string(), name_tok.line));
            }
        }
        i = j;
    }
    out
}
