//! `ASV-L001`: lock-order deadlock detection.
//!
//! For every function in the configured runtime lock files this pass
//! extracts lock acquisitions — `recv.lock()`, `recv.read()`,
//! `recv.write()` (empty argument lists only, so `io::Write::write(buf)`
//! never matches) and the free poison-recovering helper `lock(&path)` —
//! and tracks guard lifetimes through `let` bindings, reassignment,
//! explicit `drop(guard)` and scope exit.  A lock's identity is
//! `file_stem::field` (`net::inner`, `scheduler::frames`): an
//! approximation that treats all instances of one field as one lock,
//! which over-approximates exactly the way a deadlock detector should.
//!
//! Edges: holding `A` while acquiring `B` adds `A -> B`; holding `A`
//! while *calling* a function whose transitive acquisition set contains
//! `B` adds the same edge (fixpoint over the workspace call graph).  Any
//! cycle in the resulting order graph is a potential deadlock and fails
//! the lint unless an edge in the cycle carries
//! `// lint: lock-ok(<reason>)`.

use super::CallGraph;
use crate::model::CallSite;
use crate::scan::{SourceFile, TokKind};
use crate::{AnalyzerConfig, Finding, Workspace};
use std::collections::{HashMap, HashSet};

/// Escape annotation.
const LOCK_OK: &str = "lint: lock-ok";

/// One lock acquisition inside a fn body.
struct Acquisition {
    /// Token index of the acquiring name (`lock`/`read`/`write`).
    tok: usize,
    /// 1-based source line.
    line: usize,
    /// Lock identity (`file::field`).
    id: String,
}

/// A live guard during the linear scan.
struct Guard {
    var: Option<String>,
    id: String,
    depth: i32,
}

/// An order edge `from -> to` with its first-seen site.
struct Edge {
    from: String,
    to: String,
    file: usize,
    line: usize,
    annotated: bool,
}

/// `file_stem` of a relative path (`crates/runtime/src/net.rs` -> `net`).
fn stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
}

/// Extracts the acquisitions in token range `[start, end)` of `sf`.
fn acquisitions(
    sf: &SourceFile,
    start: usize,
    end: usize,
    impl_type: Option<&str>,
) -> Vec<Acquisition> {
    let toks = &sf.tokens;
    let file = stem(&sf.rel);
    let mut out = Vec::new();
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |k: usize, s: &str| {
            i + k < end && toks[i + k].kind == TokKind::Punct && toks[i + k].text == s
        };
        match t.text.as_str() {
            // `recv.lock()` / `recv.read()` / `recv.write()`.
            "lock" | "read" | "write"
                if i >= 2
                    && toks[i - 1].text == "."
                    && next_is(1, "(")
                    && next_is(2, ")")
                    && toks[i - 2].kind == TokKind::Ident =>
            {
                let recv = &toks[i - 2].text;
                let field = if recv == "self" {
                    impl_type.unwrap_or("self")
                } else {
                    recv
                };
                out.push(Acquisition {
                    tok: i,
                    line: t.line,
                    id: format!("{file}::{field}"),
                });
            }
            // The free poison-recovering helper: `lock(&self.inner)`.
            "lock" if (i == 0 || toks[i - 1].text != ".") && next_is(1, "(") => {
                let mut j = i + 2;
                let mut last = None;
                let mut depth = 1;
                while j < end && depth > 0 {
                    match (toks[j].kind, toks[j].text.as_str()) {
                        (TokKind::Punct, "(") => depth += 1,
                        (TokKind::Punct, ")") => depth -= 1,
                        (TokKind::Ident, name) if name != "self" => last = Some(name),
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(field) = last {
                    out.push(Acquisition {
                        tok: i,
                        line: t.line,
                        id: format!("{file}::{field}"),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// The binding variable of the statement that starts at `stmt_start`:
/// `let [mut] x = ...`, `let Ok(x) = ...`, or `x = ...`.
fn binding_var(toks: &[crate::scan::Token], stmt_start: usize, end: usize) -> Option<String> {
    let mut j = stmt_start;
    while j < end && matches!(toks[j].text.as_str(), "if" | "while") {
        j += 1;
    }
    if j < end && toks[j].text == "let" {
        j += 1;
        if j < end && toks[j].text == "mut" {
            j += 1;
        }
        if j < end && toks[j].kind == TokKind::Ident {
            // `let Ok(g)` — unwrap the single-field pattern.
            if j + 2 < end && toks[j + 1].text == "(" && toks[j + 2].kind == TokKind::Ident {
                return Some(toks[j + 2].text.clone());
            }
            return Some(toks[j].text.clone());
        }
        return None;
    }
    if j + 1 < end && toks[j].kind == TokKind::Ident && toks[j + 1].text == "=" {
        return Some(toks[j].text.clone());
    }
    None
}

/// Runs the lock-order analysis.
pub fn run(ws: &Workspace, config: &AnalyzerConfig) -> Vec<Finding> {
    let g = CallGraph::build(ws);
    let lock_file: Vec<bool> = ws
        .files
        .iter()
        .map(|f| config.lock_files.iter().any(|l| f.rel.ends_with(l)))
        .collect();

    // Direct acquisition sets per node, then the transitive fixpoint over
    // the call graph (calls to the free `lock` helper are modeled as the
    // call-site acquisition instead, so the helper itself is excluded).
    let mut acq: Vec<Vec<Acquisition>> = Vec::with_capacity(g.nodes.len());
    for node in 0..g.nodes.len() {
        let (fi, _) = g.nodes[node];
        let def = g.def(ws, node);
        if !lock_file[fi] || def.name == "lock" {
            acq.push(Vec::new());
            continue;
        }
        let list = def.body.map_or_else(Vec::new, |(s, e)| {
            acquisitions(&ws.files[fi], s, e, def.impl_type.as_deref())
        });
        acq.push(list);
    }
    let mut trans: Vec<HashSet<String>> = acq
        .iter()
        .map(|list| list.iter().map(|a| a.id.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for node in 0..g.nodes.len() {
            let mut add: Vec<String> = Vec::new();
            for call in &g.def(ws, node).calls {
                if call.name == "lock" {
                    continue;
                }
                for target in g.resolve(call) {
                    for id in &trans[target] {
                        if !trans[node].contains(id) {
                            add.push(id.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[node].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    // Linear scan each lock-file fn, tracking live guards and emitting
    // order edges.
    let mut edges: HashMap<(String, String), Edge> = HashMap::new();
    for (node, acq_node) in acq.iter().enumerate() {
        let (fi, _) = g.nodes[node];
        if !lock_file[fi] || acq_node.is_empty() && g.def(ws, node).calls.is_empty() {
            continue;
        }
        let def = g.def(ws, node);
        let Some((start, end)) = def.body else {
            continue;
        };
        let sf = &ws.files[fi];
        let toks = &sf.tokens;
        let acq_at: HashMap<usize, &Acquisition> = acq_node.iter().map(|a| (a.tok, a)).collect();
        let call_at: HashMap<usize, &CallSite> = def.calls.iter().map(|c| (c.tok, c)).collect();

        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0i32;
        let mut stmt_start = start;
        let mut emit = |guards: &[Guard], to: &str, line: usize, annotated: bool| {
            for gd in guards {
                edges
                    .entry((gd.id.clone(), to.to_owned()))
                    .and_modify(|e| e.annotated |= annotated)
                    .or_insert(Edge {
                        from: gd.id.clone(),
                        to: to.to_owned(),
                        file: fi,
                        line,
                        annotated,
                    });
            }
        };
        let mut i = start;
        while i < end {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        stmt_start = i + 1;
                    }
                    "}" => {
                        depth -= 1;
                        guards.retain(|gd| gd.depth <= depth);
                        stmt_start = i + 1;
                    }
                    ";" => {
                        guards.retain(|gd| gd.var.is_some());
                        stmt_start = i + 1;
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            // `drop(guard)` releases early.
            if t.kind == TokKind::Ident
                && t.text == "drop"
                && i + 2 < end
                && toks[i + 1].text == "("
                && toks[i + 2].kind == TokKind::Ident
            {
                let var = &toks[i + 2].text;
                guards.retain(|gd| gd.var.as_deref() != Some(var));
                i += 3;
                continue;
            }
            if let Some(a) = acq_at.get(&i) {
                let annotated = sf.annotated_above(a.line, LOCK_OK);
                emit(&guards, &a.id, a.line, annotated);
                let var = binding_var(toks, stmt_start, end);
                // Reassignment to an existing guard variable replaces it.
                if let Some(v) = &var {
                    guards.retain(|gd| gd.var.as_deref() != Some(v));
                }
                guards.push(Guard {
                    var,
                    id: a.id.clone(),
                    depth,
                });
                i += 1;
                continue;
            }
            if let Some(call) = call_at.get(&i) {
                if call.name != "lock" && !guards.is_empty() {
                    let annotated = sf.annotated_above(call.line, LOCK_OK);
                    let mut held: HashSet<String> = HashSet::new();
                    for target in g.resolve(call) {
                        for id in &trans[target] {
                            held.insert(id.clone());
                        }
                    }
                    for id in held {
                        emit(&guards, &id, call.line, annotated);
                    }
                }
            }
            i += 1;
        }
    }

    // Cycle detection over the id graph (Tarjan SCCs; self-loops count).
    let mut ids: Vec<&String> = Vec::new();
    let mut idx: HashMap<&String, usize> = HashMap::new();
    for e in edges.values() {
        for id in [&e.from, &e.to] {
            if !idx.contains_key(id) {
                idx.insert(id, ids.len());
                ids.push(id);
            }
        }
    }
    let n = ids.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges.values() {
        adj[idx[&e.from]].push(idx[&e.to]);
    }
    let sccs = tarjan(n, &adj);

    let mut findings = Vec::new();
    for scc in sccs {
        let cyclic = scc.len() > 1 || (scc.len() == 1 && adj[scc[0]].contains(&scc[0]));
        if !cyclic {
            continue;
        }
        let members: HashSet<&str> = scc.iter().map(|&v| ids[v].as_str()).collect();
        let mut cycle_edges: Vec<&Edge> = edges
            .values()
            .filter(|e| members.contains(e.from.as_str()) && members.contains(e.to.as_str()))
            .collect();
        if cycle_edges.iter().any(|e| e.annotated) {
            continue;
        }
        cycle_edges.sort_by_key(|e| (&ws.files[e.file].rel, e.line));
        let site = cycle_edges[0];
        let mut names: Vec<&str> = members.iter().copied().collect();
        names.sort_unstable();
        findings.push(Finding {
            code: "ASV-L001",
            file: ws.files[site.file].rel.clone(),
            line: site.line,
            message: format!(
                "lock-order cycle between {{{}}} — potential deadlock (annotate an edge with \
                 `// lint: lock-ok(<reason>)` if the order is proven safe)",
                names.join(", ")
            ),
        });
    }
    findings
}

/// Tarjan's strongly-connected components.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<usize>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strong(v: usize, st: &mut State<'_>) {
        st.index[v] = st.next;
        st.low[v] = st.next;
        st.next += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for k in 0..st.adj[v].len() {
            let w = st.adj[v][k];
            if st.index[w] == usize::MAX {
                strong(w, st);
                st.low[v] = st.low[v].min(st.low[w]);
            } else if st.on_stack[w] {
                st.low[v] = st.low[v].min(st.index[w]);
            }
        }
        if st.low[v] == st.index[v] {
            let mut scc = Vec::new();
            loop {
                let w = st.stack.pop().expect("tarjan stack underflow");
                st.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            st.out.push(scc);
        }
    }
    let mut st = State {
        adj,
        index: vec![usize::MAX; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v] == usize::MAX {
            strong(v, &mut st);
        }
    }
    st.out
}
