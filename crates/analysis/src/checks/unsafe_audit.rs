//! `ASV-U001` / `ASV-U002`: the unsafe/SAFETY audit.
//!
//! Every `unsafe` block, `unsafe fn` item and `unsafe impl` must carry a
//! `// SAFETY:` comment (a `# Safety` doc section also counts for fns).
//! clippy's `undocumented_unsafe_blocks` covers blocks only; this pass
//! extends the requirement to fn declarations — the gap that left the
//! `#[target_feature]` kernels in `crates/stereo/src/simd.rs` undocumented.
//!
//! `ASV-U002` then audits *call sites* of `#[target_feature]` functions:
//! executing one on a CPU without the feature is UB regardless of the
//! function's own soundness, so every call must sit inside a documented
//! unsafe site (a SAFETY-annotated `unsafe` block — the `SimdLevel`
//! dispatch layer pattern — or a documented `unsafe fn`, e.g. a sibling
//! kernel).
//!
//! Exemption: an `unsafe fn` implementing a trait method (`unsafe impl
//! GlobalAlloc for ...` methods) inherits the trait's safety contract and
//! needs no per-fn SAFETY comment; the `unsafe impl` itself still needs
//! one.

use crate::model::{self, FnDef, UBIQUITOUS_METHODS};
use crate::scan::{SourceFile, TokKind};
use crate::{Finding, Workspace};

/// Annotation accepted on any unsafe construct.
const SAFETY: &str = "SAFETY:";
/// Doc-section spelling accepted on `unsafe fn` declarations.
const SAFETY_DOC: &str = "# Safety";

/// An `unsafe { ... }` block: token span and whether it is documented.
struct UnsafeBlock {
    start: usize,
    end: usize,
    line: usize,
    documented: bool,
}

/// Collects every `unsafe {` block in a file.
fn unsafe_blocks(sf: &SourceFile) -> Vec<UnsafeBlock> {
    let toks = &sf.tokens;
    let close = model::match_braces(toks);
    let mut blocks = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "unsafe"
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Punct
            && toks[i + 1].text == "{"
            && close[i + 1] != usize::MAX
        {
            blocks.push(UnsafeBlock {
                start: i + 1,
                end: close[i + 1],
                line: toks[i].line,
                documented: sf.annotated_above(toks[i].line, SAFETY),
            });
        }
    }
    blocks
}

/// Whether the fn declaration carries a SAFETY comment or `# Safety` doc
/// section.
fn fn_documented(sf: &SourceFile, def: &FnDef) -> bool {
    sf.annotated_above(def.line, SAFETY) || sf.annotated_above(def.line, SAFETY_DOC)
}

/// Whether `def` is a `#[target_feature]` function.
fn is_target_feature(def: &FnDef) -> bool {
    def.attrs.iter().any(|a| a.contains("target_feature"))
}

/// Runs the unsafe audit over the whole workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let blocks: Vec<Vec<UnsafeBlock>> = ws.files.iter().map(unsafe_blocks).collect();

    for (fi, sf) in ws.files.iter().enumerate() {
        // U001 on blocks.
        for b in &blocks[fi] {
            if !b.documented {
                findings.push(Finding {
                    code: "ASV-U001",
                    file: sf.rel.clone(),
                    line: b.line,
                    message: "`unsafe` block without a `// SAFETY:` comment".to_owned(),
                });
            }
        }
        // U001 on `unsafe impl` items.
        let toks = &sf.tokens;
        for i in 0..toks.len() {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "unsafe"
                && i + 1 < toks.len()
                && toks[i + 1].kind == TokKind::Ident
                && toks[i + 1].text == "impl"
                && !sf.annotated_above(toks[i].line, SAFETY)
            {
                findings.push(Finding {
                    code: "ASV-U001",
                    file: sf.rel.clone(),
                    line: toks[i].line,
                    message: "`unsafe impl` without a `// SAFETY:` comment".to_owned(),
                });
            }
        }
        // U001 on `unsafe fn` declarations (trait-impl methods exempt:
        // they implement the trait's documented contract).
        for def in &ws.models[fi].fns {
            if def.is_unsafe && def.impl_trait.is_none() && !fn_documented(sf, def) {
                findings.push(Finding {
                    code: "ASV-U001",
                    file: sf.rel.clone(),
                    line: def.line,
                    message: format!(
                        "`unsafe fn {}` without a `// SAFETY:` comment or `# Safety` doc section",
                        def.name
                    ),
                });
            }
        }
    }

    // U002: calls to #[target_feature] fns must come from documented
    // unsafe sites.
    let mut tf_names: Vec<&str> = Vec::new();
    for m in &ws.models {
        for def in &m.fns {
            if is_target_feature(def) {
                tf_names.push(&def.name);
            }
        }
    }
    if tf_names.is_empty() {
        return findings;
    }

    for (fi, sf) in ws.files.iter().enumerate() {
        for def in &ws.models[fi].fns {
            let caller_documented_unsafe =
                def.is_unsafe && (def.impl_trait.is_some() || fn_documented(sf, def));
            for call in &def.calls {
                if !tf_names.contains(&call.name.as_str()) {
                    continue;
                }
                if call.kind == model::CallKind::Method
                    && UBIQUITOUS_METHODS.contains(&call.name.as_str())
                {
                    continue;
                }
                if caller_documented_unsafe {
                    continue;
                }
                let in_documented_block = blocks[fi]
                    .iter()
                    .any(|b| b.documented && b.start < call.tok && call.tok < b.end);
                if !in_documented_block {
                    findings.push(Finding {
                        code: "ASV-U002",
                        file: sf.rel.clone(),
                        line: call.line,
                        message: format!(
                            "`{}` is `#[target_feature]` but this call is outside any \
                             documented unsafe site",
                            call.name
                        ),
                    });
                }
            }
        }
    }
    findings
}
