//! The four lint passes: unsafe audit, hot-path allocation, lock-order,
//! and registry consistency — plus the shared name-resolution-lite call
//! graph the reachability-based passes ([`alloc`], [`locks`]) build on.

pub mod alloc;
pub mod locks;
pub mod registry;
pub mod unsafe_audit;

use crate::model::{self, CallKind, CallSite, FnDef, UBIQUITOUS_METHODS};
use crate::Workspace;
use std::collections::{HashMap, HashSet};

/// The workspace call graph: one node per production (non-test) function
/// in library sources, with call sites resolved *by name*.
///
/// Resolution over-approximates (any same-named method may be the target),
/// which is the right bias for lints that must cover cold branches; the
/// [`UBIQUITOUS_METHODS`] list keeps std-prelude names from connecting
/// everything to everything.
pub(crate) struct CallGraph {
    /// `(file index, fn index)` per node.
    pub nodes: Vec<(usize, usize)>,
    methods_by_name: HashMap<String, Vec<usize>>,
    free_by_name: HashMap<String, Vec<usize>>,
    by_qual: HashMap<String, Vec<usize>>,
    impl_types: HashSet<String>,
}

impl CallGraph {
    /// Builds the graph over every production fn in library sources
    /// (`src/` excluding `src/bin`, tests, benches, examples, and
    /// `#[cfg(test)]` spans).
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut g = CallGraph {
            nodes: Vec::new(),
            methods_by_name: HashMap::new(),
            free_by_name: HashMap::new(),
            by_qual: HashMap::new(),
            impl_types: HashSet::new(),
        };
        for (fi, sf) in ws.files.iter().enumerate() {
            // The analyzer itself never runs on the frame path; keeping it
            // out of the graph stops generic fn names (`run`, `build`)
            // from aliasing into the hot set.
            if !ws.is_library_source(fi) || sf.rel.starts_with("crates/analysis/") {
                continue;
            }
            let test_spans = model::test_spans(sf);
            for (di, def) in ws.models[fi].fns.iter().enumerate() {
                let anchor = def.body.map_or(usize::MAX, |(s, _)| s);
                if test_spans.iter().any(|&(s, e)| s < anchor && anchor < e) {
                    continue;
                }
                let node = g.nodes.len();
                g.nodes.push((fi, di));
                if let Some(t) = &def.impl_type {
                    g.impl_types.insert(t.clone());
                    g.methods_by_name
                        .entry(def.name.clone())
                        .or_default()
                        .push(node);
                    g.by_qual.entry(def.qual.clone()).or_default().push(node);
                } else {
                    g.free_by_name
                        .entry(def.name.clone())
                        .or_default()
                        .push(node);
                }
            }
        }
        g
    }

    /// The [`FnDef`] behind a node.
    pub fn def<'w>(&self, ws: &'w Workspace, node: usize) -> &'w FnDef {
        let (fi, di) = self.nodes[node];
        &ws.models[fi].fns[di]
    }

    /// Possible workspace targets of a call site.
    pub fn resolve(&self, call: &CallSite) -> Vec<usize> {
        let none: Vec<usize> = Vec::new();
        match call.kind {
            CallKind::Macro => none,
            CallKind::Method => {
                if UBIQUITOUS_METHODS.contains(&call.name.as_str()) {
                    none
                } else {
                    self.methods_by_name
                        .get(&call.name)
                        .cloned()
                        .unwrap_or_default()
                }
            }
            CallKind::Path => match &call.qual {
                Some(q) if self.impl_types.contains(q) => self
                    .by_qual
                    .get(&format!("{q}::{}", call.name))
                    .cloned()
                    .unwrap_or_default(),
                // `module::helper(...)` or a std type (`Vec::new`): only a
                // free fn of the same name can be the target.
                _ => self
                    .free_by_name
                    .get(&call.name)
                    .cloned()
                    .unwrap_or_default(),
            },
            CallKind::Free => {
                let mut out = self
                    .free_by_name
                    .get(&call.name)
                    .cloned()
                    .unwrap_or_default();
                // A bare `deliver()` may invoke a closure wrapping a
                // method: fall back to same-named methods.
                if !UBIQUITOUS_METHODS.contains(&call.name.as_str()) {
                    out.extend(
                        self.methods_by_name
                            .get(&call.name)
                            .cloned()
                            .unwrap_or_default(),
                    );
                }
                out
            }
        }
    }
}
