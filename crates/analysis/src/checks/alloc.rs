//! `ASV-A001`: the static hot-path allocation lint.
//!
//! The counting-allocator tests prove the steady-state frame path does not
//! allocate — for the branches they execute.  This pass covers the rest:
//! it walks the call graph from the hot-path roots (`IsmState::step_with`,
//! every `FrameSink::deliver` impl, `SequenceGate::admit`,
//! `wire::validate_message`) and flags allocating constructs anywhere in
//! the reachable set, including error and cold branches no test drives.
//!
//! A finding is silenced by `// lint: alloc-ok(<reason>)` on the line or
//! in the comment block above it — the reason is the point: "pool miss,
//! amortized", "error path, already failing", "Arc refcount bump, no heap
//! alloc".

use super::CallGraph;
use crate::model::CallKind;
use crate::{AnalyzerConfig, Finding, Workspace};
use std::collections::HashMap;

/// Escape annotation.
const ALLOC_OK: &str = "lint: alloc-ok";

/// Std types whose constructors allocate (or are treated as allocating by
/// the contract: `Vec::new` is flagged so growth stays visible).
const ALLOC_TYPES: &[&str] = &[
    "Arc", "BTreeMap", "BTreeSet", "Box", "CString", "HashMap", "HashSet", "PathBuf", "Rc",
    "String", "Vec", "VecDeque",
];

/// Constructor names flagged on [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["clone", "from", "from_iter", "new", "with_capacity"];

/// Method names that produce owned heap data.
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_owned", "to_string", "to_vec"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Runs the allocation lint.
pub fn run(ws: &Workspace, config: &AnalyzerConfig) -> Vec<Finding> {
    let g = CallGraph::build(ws);

    // Seed the BFS with the configured roots, remembering which root
    // pulled each node in (for the finding message).
    let mut root_of: HashMap<usize, String> = HashMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for (node, &(fi, _)) in g.nodes.iter().enumerate() {
        let def = g.def(ws, node);
        for spec in &config.alloc_roots {
            if def.name != spec.fn_name {
                continue;
            }
            if let Some(t) = spec.type_name {
                if def.impl_type.as_deref() != Some(t) {
                    continue;
                }
            }
            if let Some(t) = spec.trait_name {
                if def.impl_trait.as_deref() != Some(t) {
                    continue;
                }
            }
            if let Some(sfx) = spec.file_suffix {
                if !ws.files[fi].rel.ends_with(sfx) {
                    continue;
                }
            }
            root_of.entry(node).or_insert_with(|| def.qual.clone());
            queue.push(node);
        }
    }

    let mut head = 0;
    while head < queue.len() {
        let node = queue[head];
        head += 1;
        let root = root_of[&node].clone();
        for call in &g.def(ws, node).calls {
            for target in g.resolve(call) {
                if let std::collections::hash_map::Entry::Vacant(e) = root_of.entry(target) {
                    e.insert(root.clone());
                    queue.push(target);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (&node, root) in &root_of {
        let (fi, _) = g.nodes[node];
        let sf = &ws.files[fi];
        let def = g.def(ws, node);
        for call in &def.calls {
            let construct = match call.kind {
                CallKind::Macro if ALLOC_MACROS.contains(&call.name.as_str()) => {
                    format!("{}!", call.name)
                }
                CallKind::Method if ALLOC_METHODS.contains(&call.name.as_str()) => {
                    format!(".{}()", call.name)
                }
                CallKind::Path => match &call.qual {
                    Some(q)
                        if ALLOC_TYPES.contains(&q.as_str())
                            && ALLOC_CTORS.contains(&call.name.as_str()) =>
                    {
                        format!("{q}::{}", call.name)
                    }
                    _ => continue,
                },
                _ => continue,
            };
            if sf.annotated_above(call.line, ALLOC_OK) {
                continue;
            }
            findings.push(Finding {
                code: "ASV-A001",
                file: sf.rel.clone(),
                line: call.line,
                message: format!(
                    "`{construct}` allocates in `{}`, reachable from hot-path root `{root}` \
                     (annotate with `// lint: alloc-ok(<reason>)` if intended)",
                    def.qual
                ),
            });
        }
    }
    findings
}
