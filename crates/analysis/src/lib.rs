//! `asv-analysis`: a dependency-free static analysis pass over the
//! workspace source, wired into CI as the `asv_lint` gate.
//!
//! The dynamic side of this repo's invariants is well covered — counting
//! allocators prove the zero-alloc steady state, threaded tests race the
//! sequence gate, seeded sims kill shards mid-stream.  What dynamic tests
//! structurally cannot cover are the branches they never execute: the cold
//! error paths that allocate, the `unsafe` kernel nobody re-audited after
//! an edit, the lock pair that only inverts under a rare interleaving, the
//! env knob someone added but never documented.  This crate is the static
//! complement: four checks over the source itself, built on a hand-rolled
//! token scanner ([`scan`]) and a name-resolution-lite call graph
//! ([`model`]) — no `syn`, no dependencies, consistent with the offline
//! shims policy.
//!
//! | code | check | escape annotation |
//! |------|-------|-------------------|
//! | `ASV-U001` | `unsafe` block / fn / impl without a `// SAFETY:` comment (or `# Safety` doc section) | write the safety argument |
//! | `ASV-U002` | `#[target_feature]` fn called outside a documented-unsafe site | move the call behind the dispatch layer |
//! | `ASV-A001` | allocating construct in a function reachable from a hot-path root | `// lint: alloc-ok(<reason>)` |
//! | `ASV-L001` | cycle in the inter-lock acquisition-order graph | `// lint: lock-ok(<reason>)` |
//! | `ASV-R001` | `ASV_*` env knob read in code but missing from README's knob table | document it |
//! | `ASV-R002` | README documents an `ASV_*` knob no code reads | delete the row |
//! | `ASV-R007` | `ASV_*` env knob read outside the `knobs` registry module and not listed in it | register it |
//! | `ASV-R003` | Prometheus family rendered by `export.rs` but absent from README | document it |
//! | `ASV-R004` | README documents an `asv_*` family `export.rs` never renders | delete the row |
//! | `ASV-R005` | Prometheus family not locked by the golden scrape test | extend the golden test |
//! | `ASV-R006` | `wire` protocol constant not documented with its value in README | document `NAME value` |
//!
//! Run it locally with:
//!
//! ```sh
//! cargo run -p asv-analysis --bin asv_lint -- --workspace
//! ```

pub mod checks;
pub mod model;
pub mod scan;

use scan::SourceFile;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable finding code (`ASV-U001`, ...).
    pub code: &'static str,
    /// Path relative to the analyzed root.
    pub file: String,
    /// 1-based line number (0 when the finding is about a whole file,
    /// e.g. a missing README row).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.code, self.message
        )
    }
}

/// A hot-path root for the allocation lint: a function from which
/// reachable code must not allocate (unless annotated).
#[derive(Debug, Clone)]
pub struct RootSpec {
    /// Bare function name.
    pub fn_name: &'static str,
    /// Restrict to methods of this type (`IsmState::step_with`).
    pub type_name: Option<&'static str>,
    /// Restrict to implementations of this trait (`FrameSink::deliver` on
    /// every implementor).
    pub trait_name: Option<&'static str>,
    /// Restrict to functions defined in a file with this suffix.
    pub file_suffix: Option<&'static str>,
}

/// What to analyze and where the registry ground-truth files live.  The
/// default matches this workspace; fixture tests swap in miniature trees.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Files (by path suffix) whose lock acquisitions feed the lock-order
    /// graph.
    pub lock_files: Vec<&'static str>,
    /// Hot-path roots of the allocation lint.
    pub alloc_roots: Vec<RootSpec>,
    /// README path, relative to the root.
    pub readme: &'static str,
    /// The Prometheus renderer, relative to the root.
    pub export_file: &'static str,
    /// The golden scrape test locking metric families.
    pub golden_scrape_file: &'static str,
    /// The wire-format module whose constants README must document.
    pub wire_file: &'static str,
    /// The env-knob registry module (single in-code source of truth).
    pub knobs_file: &'static str,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            lock_files: vec![
                "crates/runtime/src/scheduler.rs",
                "crates/runtime/src/cluster.rs",
                "crates/runtime/src/ingest.rs",
                "crates/runtime/src/net.rs",
                "crates/runtime/src/supervisor.rs",
                "crates/runtime/src/qos.rs",
            ],
            alloc_roots: vec![
                RootSpec {
                    fn_name: "step_with",
                    type_name: Some("IsmState"),
                    trait_name: None,
                    file_suffix: None,
                },
                RootSpec {
                    fn_name: "deliver",
                    type_name: None,
                    trait_name: Some("FrameSink"),
                    file_suffix: None,
                },
                RootSpec {
                    fn_name: "admit",
                    type_name: Some("SequenceGate"),
                    trait_name: None,
                    file_suffix: None,
                },
                RootSpec {
                    fn_name: "validate_message",
                    type_name: None,
                    trait_name: None,
                    file_suffix: Some("wire.rs"),
                },
            ],
            readme: "README.md",
            export_file: "crates/runtime/src/export.rs",
            golden_scrape_file: "crates/runtime/tests/prometheus.rs",
            wire_file: "crates/runtime/src/wire.rs",
            knobs_file: "crates/runtime/src/knobs.rs",
        }
    }
}

/// The scanned workspace: every source file plus its structural model.
#[derive(Debug)]
pub struct Workspace {
    /// Scanned files (crate sources, shims, tests, examples).
    pub files: Vec<SourceFile>,
    /// Per-file structural models, indexed like [`Workspace::files`].
    pub models: Vec<model::FileModel>,
    /// Raw README text, when present.
    pub readme: Option<String>,
    /// Raw golden-scrape-test text, when present.
    pub golden_scrape: Option<String>,
}

impl Workspace {
    /// Index of the file whose relative path ends with `suffix`.
    pub fn file_by_suffix(&self, suffix: &str) -> Option<usize> {
        self.files.iter().position(|f| f.rel.ends_with(suffix))
    }

    /// Whether file `idx` is part of the main source tree (not tests,
    /// benches, examples or `src/bin` entry points): the call-graph and
    /// allocation scan set.
    pub fn is_library_source(&self, idx: usize) -> bool {
        let rel = &self.files[idx].rel;
        rel.contains("/src/")
            && !rel.contains("/src/bin/")
            && !rel.contains("/tests/")
            && !rel.contains("/benches/")
            && !rel.contains("/examples/")
    }
}

/// Recursively collects `.rs` files under `dir` into `out`, skipping
/// `target/`, `.git/` and this crate's own test fixtures.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "fixtures") {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Loads and scans every Rust source under `root`'s `crates/` and `shims/`
/// directories (or, when neither exists, under `root` itself — the fixture
/// layout), plus the registry ground-truth files.
pub fn load_workspace(root: &Path, config: &AnalyzerConfig) -> std::io::Result<Workspace> {
    let mut paths = Vec::new();
    let crates = root.join("crates");
    let shims = root.join("shims");
    if crates.is_dir() || shims.is_dir() {
        walk(&crates, &mut paths);
        walk(&shims, &mut paths);
    } else {
        walk(root, &mut paths);
    }
    let mut files = Vec::new();
    for path in &paths {
        let source = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::scan(&rel, &source));
    }
    let models = files
        .iter()
        .enumerate()
        .map(|(i, f)| model::build_model(i, f))
        .collect();
    let readme = std::fs::read_to_string(root.join(config.readme)).ok();
    let golden_scrape = std::fs::read_to_string(root.join(config.golden_scrape_file)).ok();
    Ok(Workspace {
        files,
        models,
        readme,
        golden_scrape,
    })
}

/// Runs all four checks over the workspace at `root` with `config`,
/// returning every finding sorted by file and line.
pub fn analyze(root: &Path, config: &AnalyzerConfig) -> std::io::Result<Vec<Finding>> {
    let ws = load_workspace(root, config)?;
    let mut findings = Vec::new();
    findings.extend(checks::unsafe_audit::run(&ws));
    findings.extend(checks::alloc::run(&ws, config));
    findings.extend(checks::locks::run(&ws, config));
    findings.extend(checks::registry::run(&ws, config));
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code)));
    Ok(findings)
}

/// Runs the analyzer with the default configuration (the committed
/// workspace layout).
pub fn analyze_default(root: &Path) -> std::io::Result<Vec<Finding>> {
    analyze(root, &AnalyzerConfig::default())
}
