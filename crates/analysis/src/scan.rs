//! A hand-rolled Rust token scanner: the lexical layer every check builds
//! on.
//!
//! This is deliberately *not* a parser — no `syn`, no grammar.  It produces
//! exactly the facts the four lint passes need and nothing more:
//!
//! * a token stream (identifiers, numbers, punctuation) with line numbers,
//!   with comments and literal *contents* stripped so keyword scans and
//!   brace matching can never be fooled by `"unsafe"` inside a string or a
//!   commented-out `Mutex`;
//! * every comment, by line, so the annotation escapes (`// SAFETY:`,
//!   `// lint: alloc-ok(...)`, `// lint: lock-ok(...)`) can be matched to
//!   the construct they document;
//! * every string literal, by line, so the registry check can harvest
//!   `ASV_*` environment-knob names and `asv_*` Prometheus family names;
//! * per-line code/comment flags, so "the contiguous comment block above
//!   this item" is computable.
//!
//! Handled lexical obstacles: nested block comments, raw strings with any
//! `#` count, byte/char literals with escapes, lifetimes vs char literals,
//! and float literals vs range expressions (`0..n`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `foo`).
    Ident,
    /// A numeric literal (`0x1f`, `1_024`, `3.5e2`).
    Num,
    /// A single punctuation character (`{`, `:`, `<`, ...).
    Punct,
    /// A lifetime (`'a`, `'static`), kept distinct so it never looks like a
    /// char literal or an identifier.
    Lifetime,
    /// A string/char/byte literal; `text` holds the *contents* (quotes and
    /// escapes included verbatim).
    Str,
}

/// One lexical token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim token text (for [`TokKind::Punct`] a single character).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// One comment (line `//` or block `/* */`), anchored at its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text without the delimiters.
    pub text: String,
}

/// One string literal and where it appeared.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based source line.
    pub line: usize,
    /// Literal contents (no quotes; escape sequences verbatim).
    pub value: String,
}

/// A scanned source file: the input of every check.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analyzed root, with `/` separators.
    pub rel: String,
    /// Token stream (comments and literals stripped to [`TokKind::Str`]).
    pub tokens: Vec<Token>,
    /// Every comment, in order.
    pub comments: Vec<Comment>,
    /// Every string literal, in order.
    pub strings: Vec<StrLit>,
    /// `line_has_code[l]` — line `l` (1-based) holds at least one token.
    pub line_has_code: Vec<bool>,
    /// `line_has_comment[l]` — line `l` intersects a comment.
    pub line_has_comment: Vec<bool>,
}

impl SourceFile {
    /// Scans `source`, recording it under the relative path `rel`.
    pub fn scan(rel: &str, source: &str) -> SourceFile {
        let mut lx = Lexer::new(source);
        lx.run();
        let lines = source.lines().count() + 2;
        let mut line_has_code = vec![false; lines];
        let mut line_has_comment = vec![false; lines];
        for t in &lx.tokens {
            if t.line < lines {
                line_has_code[t.line] = true;
            }
        }
        for c in &lx.comments {
            let span = c.text.lines().count().max(1);
            if let Some(slice) = line_has_comment.get_mut(c.line..(c.line + span).min(lines)) {
                slice.fill(true);
            }
        }
        SourceFile {
            rel: rel.to_owned(),
            tokens: lx.tokens,
            comments: lx.comments,
            strings: lx.strings,
            line_has_code,
            line_has_comment,
        }
    }

    /// All comment text that starts on `line`, concatenated.
    pub fn comment_on(&self, line: usize) -> Option<&Comment> {
        self.comments.iter().find(|c| c.line == line)
    }

    /// Whether the contiguous run of comment-only lines directly above
    /// `line` (skipping attribute-only and blank lines) contains `needle`.
    /// This is the shared "is this construct annotated?" predicate: it
    /// accepts the annotation on the construct's own line (a trailing
    /// comment) or anywhere in the comment block introducing it.
    pub fn annotated_above(&self, line: usize, needle: &str) -> bool {
        let hit = |l: usize| {
            self.comments
                .iter()
                .any(|c| c.line == l && c.text.contains(needle))
        };
        if hit(line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if l < self.line_has_comment.len() && self.line_has_comment[l] {
                if hit(l) {
                    return true;
                }
                // A code-bearing line above ends the comment block unless
                // it is an attribute (annotations may sit above `#[...]`).
                if self.line_has_code[l] && !self.line_is_attribute(l) {
                    return false;
                }
                continue;
            }
            if l < self.line_has_code.len() && self.line_has_code[l] {
                if self.line_is_attribute(l) {
                    continue;
                }
                return false;
            }
            // Blank line: keep walking (rustfmt sometimes separates the
            // doc block from the attribute stack).
            if !self.line_has_comment.get(l).copied().unwrap_or(false) {
                return false;
            }
        }
        false
    }

    /// Whether line `l`'s first token is the `#` of an attribute.
    fn line_is_attribute(&self, l: usize) -> bool {
        self.tokens
            .iter()
            .find(|t| t.line >= l)
            .is_some_and(|t| t.line == l && t.kind == TokKind::Punct && t.text == "#")
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    strings: Vec<StrLit>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
            strings: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(false),
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => {
                    if self.raw_string_ahead(1) {
                        self.raw_string(1);
                    } else {
                        self.ident();
                    }
                }
                b'b' if self.peek(1) == b'"' => {
                    self.pos += 1;
                    self.string(false);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.pos += 2;
                    self.char_lit();
                }
                b'b' if self.peek(1) == b'r' && self.raw_string_ahead(2) => self.raw_string(2),
                b'\'' => self.quote(),
                _ if b.is_ascii_alphabetic() || b == b'_' => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ if b.is_ascii_whitespace() => {
                    self.bump();
                }
                _ => {
                    let line = self.line;
                    let c = self.bump();
                    if c.is_ascii() {
                        self.tokens.push(Token {
                            kind: TokKind::Punct,
                            text: (c as char).to_string(),
                            line,
                        });
                    }
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.comments.push(Comment { line, text });
    }

    fn string(&mut self, _raw: bool) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let value = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.strings.push(StrLit {
            line,
            value: value.clone(),
        });
        self.tokens.push(Token {
            kind: TokKind::Str,
            text: value,
            line,
        });
    }

    /// Whether `r`/`br` at the current position opens a raw string:
    /// `offset` hashes (possibly zero) followed by `"`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut k = offset;
        while self.peek(k) == b'#' {
            k += 1;
        }
        self.peek(k) == b'"'
    }

    fn raw_string(&mut self, prefix: usize) {
        let line = self.line;
        self.pos += prefix; // `r` or `br`
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.pos += 1;
        }
        self.bump(); // opening quote
        let start = self.pos;
        'outer: while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        self.bump();
                        continue 'outer;
                    }
                }
                break;
            }
            self.bump();
        }
        let value = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.pos += hashes;
        self.strings.push(StrLit {
            line,
            value: value.clone(),
        });
        self.tokens.push(Token {
            kind: TokKind::Str,
            text: value,
            line,
        });
    }

    /// A `'`: lifetime (`'a`) or char literal (`'x'`, `'\n'`).
    fn quote(&mut self) {
        let next = self.peek(1);
        // `'label:` / `'a` — a lifetime or loop label when the character
        // after the identifier is not a closing quote.
        if (next.is_ascii_alphabetic() || next == b'_') && self.peek(2) != b'\'' {
            let line = self.line;
            self.bump();
            let start = self.pos;
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.tokens.push(Token {
                kind: TokKind::Lifetime,
                text,
                line,
            });
            return;
        }
        self.bump();
        self.char_lit();
    }

    /// Body of a char literal, opening quote already consumed.
    fn char_lit(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let value = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.tokens.push(Token {
            kind: TokKind::Str,
            text: value,
            line,
        });
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.tokens.push(Token {
            kind: TokKind::Ident,
            text,
            line,
        });
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` continues the literal; `0..n` does not.
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.tokens.push(Token {
            kind: TokKind::Num,
            text,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let f = SourceFile::scan(
            "t.rs",
            "// unsafe in a comment\nlet x = \"unsafe { }\"; /* Mutex */\n",
        );
        assert!(!f.tokens.iter().any(|t| t.text == "unsafe"));
        assert!(!f.tokens.iter().any(|t| t.text == "Mutex"));
        assert_eq!(f.comments.len(), 2);
        assert_eq!(f.strings[0].value, "unsafe { }");
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = SourceFile::scan(
            "t.rs",
            "let a = r#\"quote \" inside\"#; let b = '\\''; let c: &'static str = \"s\";",
        );
        assert_eq!(f.strings[0].value, "quote \" inside");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::scan("t.rs", "/* outer /* inner */ still */ fn x() {}\n");
        assert!(f.tokens.iter().any(|t| t.text == "fn"));
        assert!(f.comments[0].text.contains("inner"));
    }

    #[test]
    fn numbers_vs_ranges() {
        let f = SourceFile::scan("t.rs", "for i in 0..1_024 { let y = 1.5e3; }");
        let nums: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "1_024", "1.5e3"]);
    }

    #[test]
    fn annotation_lookup_walks_comment_block() {
        let src = "// SAFETY: fine because reasons\n#[inline]\nunsafe fn f() {}\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(f.annotated_above(3, "SAFETY:"));
        assert!(!f.annotated_above(3, "lint: alloc-ok"));
    }
}
