//! `asv_lint` — the CI gate around [`asv_analysis`].
//!
//! ```sh
//! cargo run -p asv-analysis --bin asv_lint -- --workspace
//! asv_lint <path-to-workspace-root>
//! ```
//!
//! Exits 0 when the tree is clean, 1 on any finding, 2 on usage or I/O
//! errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Ascends from `start` to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.first().map(String::as_str) {
        None | Some("--workspace") => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_root(&cwd).or_else(|| {
                // Fallback: the compile-time manifest dir is
                // `<root>/crates/analysis`.
                find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            }) {
                Some(r) => r,
                None => {
                    eprintln!("asv_lint: could not locate the workspace root");
                    return ExitCode::from(2);
                }
            }
        }
        Some("--help" | "-h") => {
            eprintln!(
                "usage: asv_lint [--workspace | <root-dir>]\n\n\
                 Runs the four static checks (unsafe/SAFETY audit, hot-path allocation\n\
                 lint, lock-order analysis, registry consistency) over the workspace\n\
                 source. Exits 1 on any finding."
            );
            return ExitCode::SUCCESS;
        }
        Some(path) => PathBuf::from(path),
    };

    match asv_analysis::analyze_default(&root) {
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("asv_lint: clean ({} ok)", root.display());
                ExitCode::SUCCESS
            } else {
                println!("asv_lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("asv_lint: {e}");
            ExitCode::from(2)
        }
    }
}
