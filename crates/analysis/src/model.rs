//! Name-resolution-lite structural model: functions, impl contexts, and
//! call sites extracted from the token stream.
//!
//! The model deliberately stops far short of type checking.  Functions are
//! identified by `Type::name` (impl methods) or bare `name` (free
//! functions); call sites are resolved *by name*: a `recv.m(...)` call may
//! target any workspace method named `m`, a `Type::f(...)` call targets
//! `Type::f` when the workspace defines it, and a bare `f(...)` call
//! targets any function named `f`.  That over-approximates reachability —
//! exactly the right bias for the allocation and lock-order lints, which
//! must cover branches tests never execute — and a small
//! [`UBIQUITOUS_METHODS`] list keeps std-prelude method names (`len`,
//! `iter`, `min`, ...) from linking the whole workspace into one blob.

use crate::scan::{SourceFile, TokKind, Token};

/// Method names so common they are overwhelmingly std methods; bare
/// `recv.name()` calls to these never resolve into the workspace (a
/// workspace function of the same name is still reachable through a
/// qualified `Type::name` call).
pub const UBIQUITOUS_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_mut_ptr",
    "as_mut_slice",
    "as_ptr",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chain",
    "chars",
    "clamp",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "count_ones",
    "default",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "inspect",
    "into_iter",
    "is_char_boundary",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "is_some_and",
    "iter",
    "join",
    "iter_mut",
    "keys",
    "last",
    "len",
    "ln",
    "load",
    "lock",
    "log2",
    "map",
    "map_err",
    "map_or",
    "map_while",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "mul_add",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "position",
    "pow",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "recv",
    "remove",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "send",
    "set_len",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "split_at_mut",
    "split_first",
    "split_last",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "store",
    "sum",
    "swap",
    "take",
    "then",
    "then_some",
    "trim",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "unzip",
    "values",
    "values_mut",
    "wait",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "write",
    "write_all",
    "zip",
];

/// Rust keywords: excluded from call-site detection (`if (...)` is not a
/// call) and from identifier-based item parsing.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while",
];

/// Whether `s` is a Rust keyword.
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// How a call site names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(...)` — resolved by method name across the workspace.
    Method,
    /// `Qual::name(...)` — resolved as `Qual::name`, falling back to bare
    /// name when `Qual` is not a workspace type.
    Path,
    /// `name(...)` — a free call (or a closure/fn-pointer invocation).
    Free,
    /// `name!(...)` — a macro invocation.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (last path segment / method / macro name).
    pub name: String,
    /// Qualifier for [`CallKind::Path`] calls (`Vec` in `Vec::new`).
    pub qual: Option<String>,
    /// Shape of the call.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: usize,
    /// Token index of the called name.
    pub tok: usize,
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnDef {
    /// Bare name.
    pub name: String,
    /// `Type::name` for impl methods / trait-default methods, else `name`.
    pub qual: String,
    /// Enclosing `impl` self-type (last path segment), if any.
    pub impl_type: Option<String>,
    /// Enclosing `impl Trait for Type` trait name, if any.
    pub impl_trait: Option<String>,
    /// Index into the workspace file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Attribute text collected from the `#[...]` stack above the fn.
    pub attrs: Vec<String>,
    /// Token range of the body, exclusive of the braces; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
}

/// The per-file structural model.
#[derive(Debug)]
pub struct FileModel {
    /// Functions defined in the file, in source order.
    pub fns: Vec<FnDef>,
}

/// `impl` block context covering a token span.
#[derive(Debug)]
struct ImplSpan {
    type_name: Option<String>,
    trait_name: Option<String>,
    start: usize,
    end: usize,
}

/// Builds the structural model of one scanned file.
pub fn build_model(file_idx: usize, sf: &SourceFile) -> FileModel {
    let toks = &sf.tokens;
    let close = match_braces(toks);
    let impls = impl_spans(toks, &close);
    let traits = trait_spans(toks, &close);
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            if let Some(def) = parse_fn(file_idx, toks, i, &close, &impls, &traits) {
                i = def.body.map_or(i + 1, |(_, end)| end);
                fns.push(def);
                continue;
            }
        }
        i += 1;
    }
    FileModel { fns }
}

/// `open brace index -> close brace index` for every matched `{`.
pub fn match_braces(toks: &[Token]) -> Vec<usize> {
    let mut close = vec![usize::MAX; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => stack.push(i),
                "}" => {
                    if let Some(open) = stack.pop() {
                        close[open] = i;
                    }
                }
                _ => {}
            }
        }
    }
    close
}

/// Token spans of `#[cfg(test)] mod ... { ... }` blocks, so checks that
/// model production reachability can exclude test-only code.
pub fn test_spans(sf: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &sf.tokens;
    let close = match_braces(toks);
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if is_cfg_test {
            // Find the `{` of the item this attribute decorates (a test
            // module or a lone test fn).
            let mut j = i + 7;
            while j < toks.len() && !(toks[j].kind == TokKind::Punct && toks[j].text == "{") {
                if toks[j].kind == TokKind::Punct && toks[j].text == ";" {
                    break;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" && close[j] != usize::MAX {
                spans.push((j, close[j]));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Every `impl ... {` block: its (type, trait) names and body token span.
fn impl_spans(toks: &[Token], close: &[usize]) -> Vec<ImplSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "impl" {
            // Collect path segments until the opening brace, tracking the
            // `for` keyword that splits `impl Trait for Type`.
            let mut pre_for: Vec<String> = Vec::new();
            let mut post_for: Vec<String> = Vec::new();
            let mut saw_for = false;
            let mut angle = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                let t = &toks[j];
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "<") => angle += 1,
                    (TokKind::Punct, ">") => angle -= 1,
                    (TokKind::Punct, "{") if angle <= 0 => break,
                    (TokKind::Punct, ";") => break,
                    (TokKind::Ident, "for") if angle <= 0 => saw_for = true,
                    (TokKind::Ident, "where") if angle <= 0 => {
                        // `where` clauses never contain braces; skip to `{`.
                        while j + 1 < toks.len()
                            && !(toks[j + 1].kind == TokKind::Punct && toks[j + 1].text == "{")
                        {
                            j += 1;
                        }
                    }
                    (TokKind::Ident, name) if angle <= 0 && !is_keyword(name) => {
                        if saw_for {
                            post_for.push(name.to_owned());
                        } else {
                            pre_for.push(name.to_owned());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                let end = close[j];
                let (type_name, trait_name) = if saw_for {
                    (post_for.last().cloned(), pre_for.first().cloned())
                } else {
                    (pre_for.last().cloned(), None)
                };
                if end != usize::MAX {
                    spans.push(ImplSpan {
                        type_name,
                        trait_name,
                        start: j,
                        end,
                    });
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Every `trait Name {` body span, so default methods qualify as
/// `Name::method`.
fn trait_spans(toks: &[Token], close: &[usize]) -> Vec<ImplSpan> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "trait"
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
        {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() {
                match (toks[j].kind, toks[j].text.as_str()) {
                    (TokKind::Punct, "<") => angle += 1,
                    (TokKind::Punct, ">") => angle -= 1,
                    (TokKind::Punct, "{") if angle <= 0 => break,
                    (TokKind::Punct, ";") => break,
                    _ => {}
                }
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" && close[j] != usize::MAX {
                spans.push(ImplSpan {
                    type_name: Some(name),
                    trait_name: None,
                    start: j,
                    end: close[j],
                });
            }
        }
    }
    spans
}

/// Parses the `fn` item whose `fn` keyword sits at token `at`.
fn parse_fn(
    file_idx: usize,
    toks: &[Token],
    at: usize,
    close: &[usize],
    impls: &[ImplSpan],
    traits: &[ImplSpan],
) -> Option<FnDef> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident || is_keyword(&name_tok.text) {
        // `fn(` — a fn-pointer type, not an item.
        return None;
    }
    let name = name_tok.text.clone();
    let (is_unsafe, attrs) = modifiers_and_attrs(toks, at);
    // Find the body `{` (or `;`) after the signature: parens and angles
    // must be balanced, and `->` must not count its `>` as closing.
    let mut j = at + 2;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut body = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "<" => angle += 1,
                ">" if !prev_is(toks, j, "-") => angle = (angle - 1).max(0),
                "{" if paren == 0 && angle == 0 => {
                    let end = close[j];
                    if end == usize::MAX {
                        return None;
                    }
                    body = Some((j + 1, end));
                    break;
                }
                ";" if paren == 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    let ctx = impls
        .iter()
        .chain(traits.iter())
        .filter(|s| s.start < at && at < s.end)
        .max_by_key(|s| s.start);
    let impl_type = ctx.and_then(|s| s.type_name.clone());
    let impl_trait = ctx.and_then(|s| s.trait_name.clone());
    let qual = match &impl_type {
        Some(t) => format!("{t}::{name}"),
        None => name.clone(),
    };
    let calls = body.map_or_else(Vec::new, |(s, e)| collect_calls(toks, s, e));
    Some(FnDef {
        name,
        qual,
        impl_type,
        impl_trait,
        file: file_idx,
        line: name_tok.line,
        is_unsafe,
        attrs,
        body,
        calls,
    })
}

/// Walks backwards over the modifier stack (`pub(crate) const unsafe
/// extern "C"`) and the attribute stack above a `fn`, returning whether the
/// fn is `unsafe` and the collected attribute texts.
fn modifiers_and_attrs(toks: &[Token], fn_at: usize) -> (bool, Vec<String>) {
    let mut is_unsafe = false;
    let mut attrs = Vec::new();
    let mut j = fn_at;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "unsafe") => is_unsafe = true,
            (TokKind::Ident, "pub" | "const" | "async" | "extern" | "default") => {}
            (TokKind::Str, _) => {} // the ABI string of `extern "C"`
            (TokKind::Punct, ")") => {
                // The visibility scope of `pub(crate)` etc.
                let mut depth = 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
            }
            (TokKind::Punct, "]") => {
                // An attribute `#[...]`: collect its inner text.
                let end = j;
                let mut depth = 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                let inner: Vec<&str> = toks[j + 1..end].iter().map(|t| t.text.as_str()).collect();
                attrs.push(inner.join(" "));
                if j > 0 && toks[j - 1].text == "#" {
                    j -= 1;
                }
            }
            _ => break,
        }
    }
    (is_unsafe, attrs)
}

fn prev_is(toks: &[Token], at: usize, text: &str) -> bool {
    at > 0 && toks[at - 1].text == text
}

/// Extracts every call site in the token range `[start, end)`.
pub fn collect_calls(toks: &[Token], start: usize, end: usize) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        // Macro invocation: `name ! ( | [ | {`.
        if i + 1 < end && toks[i + 1].text == "!" && toks[i + 1].kind == TokKind::Punct {
            if i + 2 < end && matches!(toks[i + 2].text.as_str(), "(" | "[" | "{") {
                calls.push(CallSite {
                    name: t.text.clone(),
                    qual: None,
                    kind: CallKind::Macro,
                    line: t.line,
                    tok: i,
                });
            }
            continue;
        }
        // `name (` possibly with a `::<...>` turbofish in between.
        let mut j = i + 1;
        if j + 1 < end && toks[j].text == ":" && toks[j + 1].text == ":" {
            if j + 2 < end && toks[j + 2].text == "<" {
                let mut angle = 1i32;
                j += 3;
                while j < end && angle > 0 {
                    match toks[j].text.as_str() {
                        "<" => angle += 1,
                        ">" if !prev_is(toks, j, "-") => angle -= 1,
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                continue; // a path segment, the call is detected at its end
            }
        }
        if j >= end || !(toks[j].kind == TokKind::Punct && toks[j].text == "(") {
            continue;
        }
        // Definition sites (`fn name(`) are not calls.
        if i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn" {
            continue;
        }
        let (kind, qual) = if i > 0 && toks[i - 1].text == "." {
            (CallKind::Method, None)
        } else if i > 1 && toks[i - 1].text == ":" && toks[i - 2].text == ":" {
            let q = if i > 2 && toks[i - 3].kind == TokKind::Ident {
                Some(toks[i - 3].text.clone())
            } else {
                None
            };
            (CallKind::Path, q)
        } else {
            (CallKind::Free, None)
        };
        calls.push(CallSite {
            name: t.text.clone(),
            qual,
            kind,
            line: t.line,
            tok: i,
        });
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn model(src: &str) -> (SourceFile, FileModel) {
        let sf = SourceFile::scan("t.rs", src);
        let m = build_model(0, &sf);
        (sf, m)
    }

    #[test]
    fn qualifies_impl_methods() {
        let (_, m) = model("impl Foo { pub fn bar(&self) {} }\nfn free() {}\n");
        assert_eq!(m.fns[0].qual, "Foo::bar");
        assert_eq!(m.fns[1].qual, "free");
    }

    #[test]
    fn trait_impls_record_the_trait() {
        let (_, m) = model("impl Sink for Foo { fn deliver(&self) {} }");
        assert_eq!(m.fns[0].qual, "Foo::deliver");
        assert_eq!(m.fns[0].impl_trait.as_deref(), Some("Sink"));
    }

    #[test]
    fn attrs_and_unsafe_are_attached() {
        let (_, m) = model("#[target_feature(enable = \"avx2\")]\npub unsafe fn k(x: &[f32]) {}");
        assert!(m.fns[0].is_unsafe);
        assert!(m.fns[0].attrs.iter().any(|a| a.contains("target_feature")));
    }

    #[test]
    fn calls_of_every_shape() {
        let (_, m) = model(
            "fn f() { g(); recv.m(); Vec::new(); x.collect::<Vec<u8>>(); vec![1]; format!(\"x\"); }",
        );
        let c = &m.fns[0].calls;
        let by = |n: &str| c.iter().find(|cs| cs.name == n).unwrap();
        assert_eq!(by("g").kind, CallKind::Free);
        assert_eq!(by("m").kind, CallKind::Method);
        assert_eq!(by("new").qual.as_deref(), Some("Vec"));
        assert_eq!(by("collect").kind, CallKind::Method);
        assert_eq!(by("vec").kind, CallKind::Macro);
        assert_eq!(by("format").kind, CallKind::Macro);
    }

    #[test]
    fn generic_fn_signature_finds_body() {
        let (_, m) = model("fn f<T: Fn(usize) -> bool>(x: T) -> Vec<u8> { inner() }");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].calls[0].name, "inner");
    }
}
