//! Golden-fixture suite: each miniature tree under `tests/fixtures/`
//! must produce *exactly* its expected findings — code, file and line —
//! and the committed workspace must analyze clean.

use asv_analysis::{analyze, analyze_default, AnalyzerConfig, Finding};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The stable identity of a finding: `(code, file, line)`.
fn keys(findings: &[Finding]) -> Vec<(&'static str, &str, usize)> {
    findings
        .iter()
        .map(|f| (f.code, f.file.as_str(), f.line))
        .collect()
}

#[test]
fn unsafe_audit_fixture() {
    let findings =
        analyze(&fixture("unsafe_audit"), &AnalyzerConfig::default()).expect("fixture loads");
    assert_eq!(
        keys(&findings),
        vec![
            ("ASV-U001", "kernels/src/lib.rs", 10),
            ("ASV-U001", "kernels/src/lib.rs", 17),
            ("ASV-U001", "kernels/src/lib.rs", 31),
            ("ASV-U001", "kernels/src/lib.rs", 41),
            ("ASV-U002", "kernels/src/lib.rs", 41),
        ],
        "findings: {findings:#?}"
    );
    assert!(findings[2].message.contains("max_avx2"));
    assert!(findings[4].message.contains("documented unsafe site"));
}

#[test]
fn alloc_fixture() {
    let findings = analyze(&fixture("alloc"), &AnalyzerConfig::default()).expect("fixture loads");
    assert_eq!(
        keys(&findings),
        vec![("ASV-A001", "hot/src/lib.rs", 16)],
        "findings: {findings:#?}"
    );
    assert!(findings[0].message.contains("`Vec::new`"));
    assert!(findings[0].message.contains("`IsmState::step_with`"));
}

#[test]
fn locks_fixture() {
    let config = AnalyzerConfig {
        lock_files: vec!["eng/src/lib.rs"],
        alloc_roots: Vec::new(),
        ..AnalyzerConfig::default()
    };
    let findings = analyze(&fixture("locks"), &config).expect("fixture loads");
    assert_eq!(
        keys(&findings),
        vec![("ASV-L001", "eng/src/lib.rs", 16)],
        "findings: {findings:#?}"
    );
    assert!(
        findings[0].message.contains("lib::journal") && findings[0].message.contains("lib::state"),
        "cycle members missing: {}",
        findings[0].message
    );
}

#[test]
fn registry_fixture() {
    let config = AnalyzerConfig {
        lock_files: Vec::new(),
        alloc_roots: Vec::new(),
        readme: "README.md",
        export_file: "app/src/export.rs",
        golden_scrape_file: "app/tests/prometheus.rs",
        wire_file: "app/src/wire.rs",
        knobs_file: "app/src/knobs.rs",
    };
    let findings = analyze(&fixture("registry"), &config).expect("fixture loads");
    assert_eq!(
        keys(&findings),
        vec![
            ("ASV-R002", "README.md", 8),
            ("ASV-R004", "README.md", 15),
            ("ASV-R001", "app/src/config.rs", 11),
            ("ASV-R007", "app/src/config.rs", 11),
            ("ASV-R003", "app/src/export.rs", 6),
            ("ASV-R005", "app/src/export.rs", 7),
            ("ASV-R006", "app/src/wire.rs", 6),
        ],
        "findings: {findings:#?}"
    );
    assert!(findings[0].message.contains("ASV_GHOST"));
    assert!(findings[4].message.contains("asv_hidden_total"));
    assert!(findings[6].message.contains("MAX_KEY_BYTES"));
}

/// The committed tree must be clean: every unsafe construct documented,
/// every hot-path allocation annotated, no lock-order cycles, registries
/// in sync.  This is the same pass CI runs via `asv_lint`.
#[test]
fn committed_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let findings = analyze_default(&root).expect("workspace loads");
    assert!(
        findings.is_empty(),
        "committed tree has lint findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
