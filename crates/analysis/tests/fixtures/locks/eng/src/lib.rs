//! Lock-order fixture: an inverted Mutex pair (cycle) and a second pair
//! whose inversion carries a `lock-ok` annotation.

use std::sync::Mutex;

pub struct Engine {
    state: Mutex<u32>,
    journal: Mutex<u32>,
    queue: Mutex<u32>,
    stats: Mutex<u32>,
}

impl Engine {
    pub fn forward(&self) {
        let s = self.state.lock().unwrap();
        let j = self.journal.lock().unwrap();
        drop(j);
        drop(s);
    }

    pub fn backward(&self) {
        let j = self.journal.lock().unwrap();
        let s = self.state.lock().unwrap();
        drop(s);
        drop(j);
    }

    pub fn drain(&self) {
        let q = self.queue.lock().unwrap();
        let st = self.stats.lock().unwrap();
        drop(st);
        drop(q);
    }

    pub fn report(&self) {
        let st = self.stats.lock().unwrap();
        // lint: lock-ok(report is only ever called from the drain thread)
        let q = self.queue.lock().unwrap();
        drop(q);
        drop(st);
    }
}
