//! Reads one registered and one rogue knob.

pub fn window() -> usize {
    std::env::var("ASV_GOOD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

pub fn rogue_enabled() -> bool {
    std::env::var("ASV_ROGUE").is_ok()
}
