//! Renders the fixture metric families.

pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# TYPE asv_frames_total counter\n");
    out.push_str("# TYPE asv_hidden_total counter\n");
    out.push_str("# TYPE asv_unlocked_total counter\n");
    out
}
