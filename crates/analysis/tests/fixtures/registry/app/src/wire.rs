//! Fixture wire constants.

/// Format version, documented with its value in README.
pub const VERSION: u32 = 3;
/// Session-key cap, deliberately missing from README.
pub const MAX_KEY_BYTES: usize = 64;
