//! The fixture knob registry.

/// Window-size knob.
pub const GOOD: &str = "ASV_GOOD";
