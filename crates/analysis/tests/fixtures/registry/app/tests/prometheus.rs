//! Fixture golden scrape: locks the exported families.

#[test]
fn golden_scrape_contains_families() {
    let text = "asv_frames_total 1\nasv_hidden_total 2\n";
    assert!(text.contains("asv_frames_total"));
}
