//! Unsafe-audit fixture: one documented and one undocumented unsafe
//! block, documented and undocumented `#[target_feature]` kernels, and
//! an `unsafe impl` pair.

pub struct Wrapper(*const f32);

// SAFETY: the raw pointer is never dereferenced off-thread.
unsafe impl Send for Wrapper {}

unsafe impl Sync for Wrapper {}

pub fn touch(values: &mut [f32]) {
    // SAFETY: the caller guarantees `values` has at least one element.
    unsafe {
        *values.get_unchecked_mut(0) = 1.0;
    }
    unsafe {
        *values.get_unchecked_mut(0) = 2.0;
    }
}

/// # Safety
///
/// Caller must ensure the CPU supports `avx2`.
#[target_feature(enable = "avx2")]
pub unsafe fn sum_avx2(values: &[f32]) -> f32 {
    values.iter().sum()
}

#[target_feature(enable = "avx2")]
pub unsafe fn max_avx2(values: &[f32]) -> f32 {
    values.iter().fold(0.0, f32::max)
}

pub fn dispatch(values: &[f32]) -> f32 {
    // SAFETY: callers probe for avx2 before selecting this path.
    unsafe { sum_avx2(values) }
}

pub fn rogue(values: &[f32]) -> f32 {
    unsafe { max_avx2(values) }
}
