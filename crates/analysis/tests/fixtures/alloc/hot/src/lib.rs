//! Allocation-lint fixture: a hot-path root, a reachable helper with a
//! raw and an annotated allocation, and an unreachable function.

pub struct IsmState {
    scratch: Vec<usize>,
}

impl IsmState {
    pub fn step_with(&mut self, n: usize) -> usize {
        self.scratch.clear();
        helper(n)
    }
}

fn helper(n: usize) -> usize {
    let mut rows = Vec::new();
    rows.push(n);
    // lint: alloc-ok(cold fallback, measured)
    let annotated = vec![0usize; n];
    rows.len() + annotated.len()
}

pub fn unreachable_scratch() -> Vec<u8> {
    Vec::with_capacity(64)
}
