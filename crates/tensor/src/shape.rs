//! Shape descriptors for 4-D (`N×C×H×W`) and 5-D (`N×C×D×H×W`) tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a 4-dimensional tensor laid out as `N×C×H×W` (batch, channel,
/// height, width), the layout used by every 2-D layer in the stereo DNNs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape4 {
    /// Batch size.
    pub n: usize,
    /// Number of channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape4 {
    /// Creates a new shape.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Linear index of element `(n, c, h, w)` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of bounds.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of bounds for shape {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Returns the spatial dimensions `(h, w)`.
    pub fn spatial(&self) -> (usize, usize) {
        (self.h, self.w)
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

/// Shape of a 5-dimensional tensor laid out as `N×C×D×H×W`, used by the 3-D
/// convolutions of GC-Net, PSMNet and 3D-GAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape5 {
    /// Batch size.
    pub n: usize,
    /// Number of channels.
    pub c: usize,
    /// Depth (disparity) dimension.
    pub d: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape5 {
    /// Creates a new shape.
    pub fn new(n: usize, c: usize, d: usize, h: usize, w: usize) -> Self {
        Self { n, c, d, h, w }
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.n * self.c * self.d * self.h * self.w
    }

    /// Linear index of element `(n, c, d, h, w)` in row-major order.
    #[inline]
    pub fn index(&self, n: usize, c: usize, d: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && d < self.d && h < self.h && w < self.w,
            "index ({n},{c},{d},{h},{w}) out of bounds for shape {self}"
        );
        (((n * self.c + c) * self.d + d) * self.h + h) * self.w + w
    }
}

impl fmt::Display for Shape5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}x{}", self.n, self.c, self.d, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape4_volume_and_index() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.volume(), 120);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 4), 4);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), 119);
    }

    #[test]
    fn shape5_volume_and_index() {
        let s = Shape5::new(1, 2, 3, 4, 5);
        assert_eq!(s.volume(), 120);
        assert_eq!(s.index(0, 0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 1, 2, 3, 4), 119);
        assert_eq!(s.index(0, 0, 1, 0, 0), 20);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "1x2x3x4");
        assert_eq!(Shape5::new(1, 2, 3, 4, 5).to_string(), "1x2x3x4x5");
    }

    #[test]
    fn shape4_spatial() {
        assert_eq!(Shape4::new(1, 2, 3, 4).spatial(), (3, 4));
    }
}
