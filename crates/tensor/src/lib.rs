//! Dense tensor and neural-network kernel substrate for the ASV reproduction.
//!
//! The ASV paper ("ASV: Accelerated Stereo Vision System", MICRO 2019) builds
//! on stereo-matching DNNs whose dominant operations are convolution and
//! deconvolution (transposed convolution).  This crate provides the minimal,
//! dependency-free numerical substrate those algorithms need:
//!
//! * [`Tensor4`] — a dense, row-major `N×C×H×W` tensor of `f32`.
//! * [`Tensor5`] — a dense `N×C×D×H×W` tensor used by the 3-D stereo networks
//!   (GC-Net, PSMNet) and 3D-GAN.
//! * [`conv`] — direct 2-D/3-D convolution with stride and padding.
//! * [`deconv`] — reference transposed convolution, implemented two
//!   independent ways (zero-insertion + convolution, and output scatter) so the
//!   software deconvolution transformation in the `asv-deconv` crate can be
//!   validated against both.
//! * [`ops`] — ReLU, leaky ReLU, max/average pooling, bilinear upsampling and
//!   element-wise helpers.
//!
//! The implementation favours clarity over raw speed: plain nested loops, no
//! `unsafe`, no SIMD.  Every kernel is exercised by unit tests and the
//! cross-crate property tests in `asv-deconv`.
//!
//! # Example
//!
//! ```
//! use asv_tensor::{Tensor4, Shape4, conv::{conv2d, Conv2dParams}};
//!
//! let input = Tensor4::from_fn(Shape4::new(1, 1, 5, 5), |_, _, h, w| (h * 5 + w) as f32);
//! let kernel = Tensor4::filled(Shape4::new(1, 1, 3, 3), 1.0 / 9.0);
//! let out = conv2d(&input, &kernel, &Conv2dParams { stride: 1, padding: 1 }).unwrap();
//! assert_eq!(out.shape().h, 5);
//! assert_eq!(out.shape().w, 5);
//! ```

pub mod conv;
pub mod deconv;
pub mod error;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::{Shape4, Shape5};
pub use tensor::{Tensor4, Tensor5};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
