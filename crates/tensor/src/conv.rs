//! Direct dense convolution kernels (2-D and 3-D).
//!
//! These are the "canonical convolutions" that a systolic-array DNN
//! accelerator executes natively.  The software deconvolution transformation of
//! the ASV paper rewrites sparse deconvolution layers into sets of these dense
//! convolutions.

use crate::error::TensorError;
use crate::shape::{Shape4, Shape5};
use crate::tensor::{Tensor4, Tensor5};
use crate::Result;

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding added to all four borders.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Self {
            stride: 1,
            padding: 0,
        }
    }
}

/// Parameters of a 3-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv3dParams {
    /// Stride in the depth and both spatial dimensions.
    pub stride: usize,
    /// Zero padding added on every face.
    pub padding: usize,
}

impl Default for Conv3dParams {
    fn default() -> Self {
        Self {
            stride: 1,
            padding: 0,
        }
    }
}

/// Output spatial size of a convolution along one dimension.
///
/// Returns `None` when the kernel (with padding) does not fit in the input.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = input + 2 * padding;
    if padded < kernel || stride == 0 {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

/// Output spatial size of a transposed convolution along one dimension.
///
/// Follows the usual convention `out = (in - 1) * stride - 2*padding + kernel`.
pub fn deconv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    if input == 0 || stride == 0 {
        return None;
    }
    let grown = (input - 1) * stride + kernel;
    if grown < 2 * padding {
        return None;
    }
    Some(grown - 2 * padding)
}

/// Runs `fill(n, oc, plane)` over every `(batch, output-channel)` plane of a
/// contiguous NCHW-style buffer. Planes are disjoint, so with the `parallel`
/// feature they are distributed over the rayon pool; the per-plane arithmetic
/// (and therefore the result) is identical in both drivers.
#[cfg(feature = "parallel")]
pub(crate) fn drive_planes(
    data: &mut [f32],
    plane_len: usize,
    planes_per_batch: usize,
    fill: &(impl Fn(usize, usize, &mut [f32]) + Sync),
) {
    use rayon::prelude::*;
    if plane_len == 0 || data.is_empty() {
        return;
    }
    data.par_chunks_mut(plane_len)
        .enumerate()
        .for_each(|(p, plane)| fill(p / planes_per_batch, p % planes_per_batch, plane));
}

/// Sequential fallback of the plane driver.
#[cfg(not(feature = "parallel"))]
pub(crate) fn drive_planes(
    data: &mut [f32],
    plane_len: usize,
    planes_per_batch: usize,
    fill: &(impl Fn(usize, usize, &mut [f32]) + Sync),
) {
    if plane_len == 0 || data.is_empty() {
        return;
    }
    for (p, plane) in data.chunks_mut(plane_len).enumerate() {
        fill(p / planes_per_batch, p % planes_per_batch, plane);
    }
}

/// Dense 2-D convolution of `input` (`N×Ci×H×W`) with `kernel`
/// (`Co×Ci×KH×KW`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the channel counts disagree or
/// the kernel does not fit, and [`TensorError::InvalidParameter`] when the
/// stride is zero.
pub fn conv2d(input: &Tensor4, kernel: &Tensor4, params: &Conv2dParams) -> Result<Tensor4> {
    if params.stride == 0 {
        return Err(TensorError::invalid_parameter("stride must be non-zero"));
    }
    let ish = input.shape();
    let ksh = kernel.shape();
    if ish.c != ksh.c {
        return Err(TensorError::shape_mismatch(format!(
            "conv2d: input channels {} vs kernel channels {}",
            ish.c, ksh.c
        )));
    }
    let oh = conv_out_dim(ish.h, ksh.h, params.stride, params.padding).ok_or_else(|| {
        TensorError::shape_mismatch(format!(
            "conv2d: kernel {}x{} does not fit input {}",
            ksh.h, ksh.w, ish
        ))
    })?;
    let ow = conv_out_dim(ish.w, ksh.w, params.stride, params.padding).ok_or_else(|| {
        TensorError::shape_mismatch(format!(
            "conv2d: kernel {}x{} does not fit input {}",
            ksh.h, ksh.w, ish
        ))
    })?;

    let mut out = Tensor4::zeros(Shape4::new(ish.n, ksh.n, oh, ow));
    let pad = params.padding as isize;
    let in_data = input.as_slice();
    let k_data = kernel.as_slice();
    let fill = |n: usize, oc: usize, plane: &mut [f32]| {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ic in 0..ish.c {
                    for ky in 0..ksh.h {
                        let iy = (oy * params.stride + ky) as isize - pad;
                        if iy < 0 || iy >= ish.h as isize {
                            continue;
                        }
                        for kx in 0..ksh.w {
                            let ix = (ox * params.stride + kx) as isize - pad;
                            if ix < 0 || ix >= ish.w as isize {
                                continue;
                            }
                            acc += in_data[ish.index(n, ic, iy as usize, ix as usize)]
                                * k_data[ksh.index(oc, ic, ky, kx)];
                        }
                    }
                }
                plane[oy * ow + ox] = acc;
            }
        }
    };
    drive_planes(out.as_mut_slice(), oh * ow, ksh.n, &fill);
    Ok(out)
}

/// Dense 3-D convolution of `input` (`N×Ci×D×H×W`) with `kernel`
/// (`Co×Ci×KD×KH×KW`).
///
/// # Errors
///
/// Same error conditions as [`conv2d`].
pub fn conv3d(input: &Tensor5, kernel: &Tensor5, params: &Conv3dParams) -> Result<Tensor5> {
    if params.stride == 0 {
        return Err(TensorError::invalid_parameter("stride must be non-zero"));
    }
    let ish = input.shape();
    let ksh = kernel.shape();
    if ish.c != ksh.c {
        return Err(TensorError::shape_mismatch(format!(
            "conv3d: input channels {} vs kernel channels {}",
            ish.c, ksh.c
        )));
    }
    let od = conv_out_dim(ish.d, ksh.d, params.stride, params.padding);
    let oh = conv_out_dim(ish.h, ksh.h, params.stride, params.padding);
    let ow = conv_out_dim(ish.w, ksh.w, params.stride, params.padding);
    let (od, oh, ow) = match (od, oh, ow) {
        (Some(d), Some(h), Some(w)) => (d, h, w),
        _ => {
            return Err(TensorError::shape_mismatch(format!(
                "conv3d: kernel {} does not fit input {}",
                ksh, ish
            )))
        }
    };

    let mut out = Tensor5::zeros(Shape5::new(ish.n, ksh.n, od, oh, ow));
    let pad = params.padding as isize;
    let in_data = input.as_slice();
    let k_data = kernel.as_slice();
    let fill = |n: usize, oc: usize, plane: &mut [f32]| {
        for oz in 0..od {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..ish.c {
                        for kz in 0..ksh.d {
                            let iz = (oz * params.stride + kz) as isize - pad;
                            if iz < 0 || iz >= ish.d as isize {
                                continue;
                            }
                            for ky in 0..ksh.h {
                                let iy = (oy * params.stride + ky) as isize - pad;
                                if iy < 0 || iy >= ish.h as isize {
                                    continue;
                                }
                                for kx in 0..ksh.w {
                                    let ix = (ox * params.stride + kx) as isize - pad;
                                    if ix < 0 || ix >= ish.w as isize {
                                        continue;
                                    }
                                    acc += in_data
                                        [ish.index(n, ic, iz as usize, iy as usize, ix as usize)]
                                        * k_data[ksh.index(oc, ic, kz, ky, kx)];
                                }
                            }
                        }
                    }
                    plane[(oz * oh + oy) * ow + ox] = acc;
                }
            }
        }
    };
    drive_planes(out.as_mut_slice(), od * oh * ow, ksh.n, &fill);
    Ok(out)
}

/// Correlation variant of [`conv2d`] that accumulates the sum of absolute
/// differences (SAD) instead of the dot product.
///
/// The ASV hardware extends each systolic PE with an `a ← a + |b − c|` mode so
/// that the block-matching correspondence search of the ISM algorithm can be
/// mapped onto the same array (Sec 3.3 of the paper).  This function is the
/// functional model of that mode.
///
/// # Errors
///
/// Same error conditions as [`conv2d`].
pub fn sad_conv2d(input: &Tensor4, kernel: &Tensor4, params: &Conv2dParams) -> Result<Tensor4> {
    if params.stride == 0 {
        return Err(TensorError::invalid_parameter("stride must be non-zero"));
    }
    let ish = input.shape();
    let ksh = kernel.shape();
    if ish.c != ksh.c {
        return Err(TensorError::shape_mismatch(format!(
            "sad_conv2d: input channels {} vs kernel channels {}",
            ish.c, ksh.c
        )));
    }
    let oh = conv_out_dim(ish.h, ksh.h, params.stride, params.padding)
        .ok_or_else(|| TensorError::shape_mismatch("sad_conv2d: kernel does not fit input"))?;
    let ow = conv_out_dim(ish.w, ksh.w, params.stride, params.padding)
        .ok_or_else(|| TensorError::shape_mismatch("sad_conv2d: kernel does not fit input"))?;

    let mut out = Tensor4::zeros(Shape4::new(ish.n, ksh.n, oh, ow));
    let pad = params.padding as isize;
    let in_data = input.as_slice();
    let k_data = kernel.as_slice();
    let fill = |n: usize, oc: usize, plane: &mut [f32]| {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ic in 0..ish.c {
                    for ky in 0..ksh.h {
                        for kx in 0..ksh.w {
                            let iy = (oy * params.stride + ky) as isize - pad;
                            let ix = (ox * params.stride + kx) as isize - pad;
                            let input_val =
                                if iy < 0 || ix < 0 || iy >= ish.h as isize || ix >= ish.w as isize
                                {
                                    0.0
                                } else {
                                    in_data[ish.index(n, ic, iy as usize, ix as usize)]
                                };
                            acc += (input_val - k_data[ksh.index(oc, ic, ky, kx)]).abs();
                        }
                    }
                }
                plane[oy * ow + ox] = acc;
            }
        }
    };
    drive_planes(out.as_mut_slice(), oh * ow, ksh.n, &fill);
    Ok(out)
}

/// Number of multiply-accumulate operations performed by a dense convolution
/// with the given shapes (used to cross-check the analytical layer statistics
/// in `asv-dnn`).
pub fn conv2d_mac_count(input: Shape4, kernel: Shape4, params: &Conv2dParams) -> u64 {
    let oh = conv_out_dim(input.h, kernel.h, params.stride, params.padding).unwrap_or(0) as u64;
    let ow = conv_out_dim(input.w, kernel.w, params.stride, params.padding).unwrap_or(0) as u64;
    input.n as u64 * kernel.n as u64 * oh * ow * (kernel.c * kernel.h * kernel.w) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_input() -> Tensor4 {
        Tensor4::from_fn(Shape4::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32)
    }

    #[test]
    fn out_dim_math() {
        assert_eq!(conv_out_dim(5, 3, 1, 0), Some(3));
        assert_eq!(conv_out_dim(5, 3, 1, 1), Some(5));
        assert_eq!(conv_out_dim(5, 3, 2, 0), Some(2));
        assert_eq!(conv_out_dim(2, 3, 1, 0), None);
        assert_eq!(conv_out_dim(5, 3, 0, 0), None);
        assert_eq!(deconv_out_dim(3, 3, 2, 0), Some(7));
        assert_eq!(deconv_out_dim(3, 3, 2, 1), Some(5));
        assert_eq!(deconv_out_dim(0, 3, 2, 0), None);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let input = simple_input();
        let mut kernel = Tensor4::zeros(Shape4::new(1, 1, 3, 3));
        kernel.set(0, 0, 1, 1, 1.0);
        let out = conv2d(
            &input,
            &kernel,
            &Conv2dParams {
                stride: 1,
                padding: 1,
            },
        )
        .unwrap();
        assert_eq!(out.shape(), input.shape());
        assert!(out.max_abs_diff(&input).unwrap() < 1e-6);
    }

    #[test]
    fn box_filter_sums_neighbourhood() {
        let input = Tensor4::filled(Shape4::new(1, 1, 4, 4), 1.0);
        let kernel = Tensor4::filled(Shape4::new(1, 1, 3, 3), 1.0);
        let out = conv2d(&input, &kernel, &Conv2dParams::default()).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 2, 2));
        assert!(out.as_slice().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn stride_two_subsamples() {
        let input = simple_input();
        let mut kernel = Tensor4::zeros(Shape4::new(1, 1, 1, 1));
        kernel.set(0, 0, 0, 0, 1.0);
        let out = conv2d(
            &input,
            &kernel,
            &Conv2dParams {
                stride: 2,
                padding: 0,
            },
        )
        .unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 2, 2));
        assert_eq!(out.at(0, 0, 0, 0), 0.0);
        assert_eq!(out.at(0, 0, 0, 1), 2.0);
        assert_eq!(out.at(0, 0, 1, 0), 8.0);
        assert_eq!(out.at(0, 0, 1, 1), 10.0);
    }

    #[test]
    fn multi_channel_accumulates_over_input_channels() {
        let input = Tensor4::filled(Shape4::new(1, 3, 2, 2), 1.0);
        let kernel = Tensor4::filled(Shape4::new(2, 3, 1, 1), 2.0);
        let out = conv2d(&input, &kernel, &Conv2dParams::default()).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 2, 2, 2));
        assert!(out.as_slice().iter().all(|&v| (v - 6.0).abs() < 1e-6));
    }

    #[test]
    fn channel_mismatch_is_error() {
        let input = Tensor4::zeros(Shape4::new(1, 2, 4, 4));
        let kernel = Tensor4::zeros(Shape4::new(1, 3, 3, 3));
        assert!(conv2d(&input, &kernel, &Conv2dParams::default()).is_err());
    }

    #[test]
    fn zero_stride_is_error() {
        let input = Tensor4::zeros(Shape4::new(1, 1, 4, 4));
        let kernel = Tensor4::zeros(Shape4::new(1, 1, 3, 3));
        assert!(conv2d(
            &input,
            &kernel,
            &Conv2dParams {
                stride: 0,
                padding: 0
            }
        )
        .is_err());
        assert!(sad_conv2d(
            &input,
            &kernel,
            &Conv2dParams {
                stride: 0,
                padding: 0
            }
        )
        .is_err());
        assert!(conv3d(
            &Tensor5::zeros(Shape5::new(1, 1, 2, 2, 2)),
            &Tensor5::zeros(Shape5::new(1, 1, 1, 1, 1)),
            &Conv3dParams {
                stride: 0,
                padding: 0
            }
        )
        .is_err());
    }

    #[test]
    fn sad_conv_computes_absolute_differences() {
        let input = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let kernel = Tensor4::filled(Shape4::new(1, 1, 2, 2), 2.5);
        let out = sad_conv2d(&input, &kernel, &Conv2dParams::default()).unwrap();
        // |1-2.5| + |2-2.5| + |3-2.5| + |4-2.5| = 1.5 + 0.5 + 0.5 + 1.5 = 4
        assert_eq!(out.shape(), Shape4::new(1, 1, 1, 1));
        assert!((out.at(0, 0, 0, 0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn sad_conv_is_zero_for_identical_block() {
        let input = Tensor4::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w) as f32);
        let kernel = input.clone();
        let out = sad_conv2d(&input, &kernel, &Conv2dParams::default()).unwrap();
        assert!(out.at(0, 0, 0, 0).abs() < 1e-6);
    }

    #[test]
    fn conv3d_identity_kernel() {
        let input = Tensor5::from_fn(Shape5::new(1, 1, 3, 3, 3), |_, _, d, h, w| {
            (d * 9 + h * 3 + w) as f32
        });
        let mut kernel = Tensor5::zeros(Shape5::new(1, 1, 1, 1, 1));
        kernel.set(0, 0, 0, 0, 0, 1.0);
        let out = conv3d(&input, &kernel, &Conv3dParams::default()).unwrap();
        assert!(out.max_abs_diff(&input).unwrap() < 1e-6);
    }

    #[test]
    fn conv3d_box_filter() {
        let input = Tensor5::filled(Shape5::new(1, 1, 3, 3, 3), 1.0);
        let kernel = Tensor5::filled(Shape5::new(1, 1, 2, 2, 2), 1.0);
        let out = conv3d(&input, &kernel, &Conv3dParams::default()).unwrap();
        assert_eq!(out.shape(), Shape5::new(1, 1, 2, 2, 2));
        assert!(out.as_slice().iter().all(|&v| (v - 8.0).abs() < 1e-6));
    }

    #[test]
    fn conv3d_channel_mismatch_is_error() {
        let input = Tensor5::zeros(Shape5::new(1, 2, 3, 3, 3));
        let kernel = Tensor5::zeros(Shape5::new(1, 1, 1, 1, 1));
        assert!(conv3d(&input, &kernel, &Conv3dParams::default()).is_err());
    }

    #[test]
    fn mac_count_matches_loop_structure() {
        let input = Shape4::new(1, 3, 8, 8);
        let kernel = Shape4::new(16, 3, 3, 3);
        let params = Conv2dParams {
            stride: 1,
            padding: 1,
        };
        // 1 * 16 output channels * 8*8 outputs * 3*3*3 per output
        assert_eq!(conv2d_mac_count(input, kernel, &params), 16 * 64 * 27);
    }
}
