//! Error type shared by all tensor kernels.

use std::error::Error;
use std::fmt;

/// Error returned by tensor constructors and kernels when shapes are
/// inconsistent or parameters are invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the shape volume.
    DataLength {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree on a dimension do not.
    ShapeMismatch {
        /// Human readable description of the mismatch.
        context: String,
    },
    /// A kernel parameter (stride, padding, window, ...) is invalid.
    InvalidParameter {
        /// Human readable description of the parameter problem.
        context: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLength { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            TensorError::InvalidParameter { context } => write!(f, "invalid parameter: {context}"),
        }
    }
}

impl Error for TensorError {}

impl TensorError {
    /// Builds a [`TensorError::ShapeMismatch`] from anything displayable.
    pub fn shape_mismatch(context: impl fmt::Display) -> Self {
        TensorError::ShapeMismatch {
            context: context.to_string(),
        }
    }

    /// Builds a [`TensorError::InvalidParameter`] from anything displayable.
    pub fn invalid_parameter(context: impl fmt::Display) -> Self {
        TensorError::InvalidParameter {
            context: context.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = TensorError::DataLength {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "data length 3 does not match shape volume 4");
        let e = TensorError::shape_mismatch("kernel channels 3 vs ifmap channels 2");
        assert!(e.to_string().contains("kernel channels"));
        let e = TensorError::invalid_parameter("stride must be non-zero");
        assert!(e.to_string().starts_with("invalid parameter"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<TensorError>();
    }
}
