//! Dense `f32` tensors in `N×C×H×W` and `N×C×D×H×W` layout.

use crate::error::TensorError;
use crate::shape::{Shape4, Shape5};
use crate::Result;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense 4-D tensor (`N×C×H×W`) of `f32` values stored row-major.
///
/// `Tensor4` is the carrier type for images, feature maps and 2-D kernels in
/// the ASV reproduction.  Kernels are stored as `OutC×InC×KH×KW` with the batch
/// axis reinterpreted as the output-channel axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4 {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: Shape4) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.volume()],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: Shape4, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len() != shape.volume()`.
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::DataLength {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` at every coordinate.
    pub fn from_fn(shape: Shape4, mut f: impl FnMut(usize, usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.volume());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Self { shape, data }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn random<R: Rng + ?Sized>(shape: Shape4, lo: f32, hi: f32, rng: &mut R) -> Self {
        let dist = Uniform::new(lo, hi);
        let data = (0..shape.volume()).map(|_| dist.sample(rng)).collect();
        Self { shape, data }
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Borrow of the underlying storage in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at `(n, c, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Sets the value at `(n, c, h, w)`.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let idx = self.shape.index(n, c, h, w);
        self.data[idx] = value;
    }

    /// Adds `value` to the element at `(n, c, h, w)`.
    #[inline]
    pub fn add_at(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let idx = self.shape.index(n, c, h, w);
        self.data[idx] += value;
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied element-wise.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Self {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor4) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::shape_mismatch(format!(
                "max_abs_diff: {} vs {}",
                self.shape, other.shape
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Returns the single-channel plane `(n, c)` as a flat `H*W` vector.
    pub fn channel_plane(&self, n: usize, c: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.shape.h * self.shape.w);
        for h in 0..self.shape.h {
            for w in 0..self.shape.w {
                out.push(self.at(n, c, h, w));
            }
        }
        out
    }
}

impl Default for Tensor4 {
    fn default() -> Self {
        Tensor4::zeros(Shape4::new(0, 0, 0, 0))
    }
}

/// A dense 5-D tensor (`N×C×D×H×W`) of `f32` values stored row-major.
///
/// Used by the 3-D convolutions of GC-Net, PSMNet and 3D-GAN, where the `D`
/// axis is the disparity (or depth) dimension of the cost volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor5 {
    shape: Shape5,
    data: Vec<f32>,
}

impl Tensor5 {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: Shape5) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.volume()],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: Shape5, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len() != shape.volume()`.
    pub fn from_vec(shape: Shape5, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::DataLength {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor by evaluating `f(n, c, d, h, w)` at every coordinate.
    pub fn from_fn(
        shape: Shape5,
        mut f: impl FnMut(usize, usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(shape.volume());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for d in 0..shape.d {
                    for h in 0..shape.h {
                        for w in 0..shape.w {
                            data.push(f(n, c, d, h, w));
                        }
                    }
                }
            }
        }
        Self { shape, data }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn random<R: Rng + ?Sized>(shape: Shape5, lo: f32, hi: f32, rng: &mut R) -> Self {
        let dist = Uniform::new(lo, hi);
        let data = (0..shape.volume()).map(|_| dist.sample(rng)).collect();
        Self { shape, data }
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> Shape5 {
        self.shape
    }

    /// Borrow of the underlying storage in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(n, c, d, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, d: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, d, h, w)]
    }

    /// Sets the value at `(n, c, d, h, w)`.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, d: usize, h: usize, w: usize, value: f32) {
        let idx = self.shape.index(n, c, d, h, w);
        self.data[idx] = value;
    }

    /// Adds `value` to the element at `(n, c, d, h, w)`.
    #[inline]
    pub fn add_at(&mut self, n: usize, c: usize, d: usize, h: usize, w: usize, value: f32) {
        let idx = self.shape.index(n, c, d, h, w);
        self.data[idx] += value;
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor5) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::shape_mismatch(format!(
                "max_abs_diff: {} vs {}",
                self.shape, other.shape
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }
}

impl Default for Tensor5 {
    fn default() -> Self {
        Tensor5::zeros(Shape5::new(0, 0, 0, 0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_filled() {
        let t = Tensor4::zeros(Shape4::new(1, 2, 3, 4));
        assert_eq!(t.as_slice().len(), 24);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        let t = Tensor4::filled(Shape4::new(1, 1, 2, 2), 3.5);
        assert!(t.as_slice().iter().all(|&v| v == 3.5));
    }

    #[test]
    fn from_vec_checks_length() {
        let err = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::DataLength {
                expected: 4,
                actual: 3
            }
        );
        assert!(Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_fn_orders_row_major() {
        let t = Tensor4::from_fn(Shape4::new(1, 1, 2, 3), |_, _, h, w| (h * 3 + w) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.at(0, 0, 1, 2), 5.0);
    }

    #[test]
    fn set_and_add_at() {
        let mut t = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        t.set(0, 0, 1, 1, 2.0);
        t.add_at(0, 0, 1, 1, 3.0);
        assert_eq!(t.at(0, 0, 1, 1), 5.0);
    }

    #[test]
    fn map_and_sum() {
        let t = Tensor4::filled(Shape4::new(1, 1, 2, 2), 2.0);
        let doubled = t.map(|v| v * 2.0);
        assert_eq!(doubled.sum(), 16.0);
        assert_eq!(t.sum(), 8.0);
    }

    #[test]
    fn max_abs_diff_detects_mismatch() {
        let a = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        let b = Tensor4::zeros(Shape4::new(1, 1, 2, 3));
        assert!(a.max_abs_diff(&b).is_err());
        let c = Tensor4::filled(Shape4::new(1, 1, 2, 2), 0.25);
        assert_eq!(a.max_abs_diff(&c).unwrap(), 0.25);
    }

    #[test]
    fn random_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let t = Tensor4::random(Shape4::new(1, 2, 8, 8), -1.0, 1.0, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn channel_plane_extracts_rows() {
        let t = Tensor4::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 100 + h * 10 + w) as f32
        });
        assert_eq!(t.channel_plane(0, 1), vec![100.0, 101.0, 110.0, 111.0]);
    }

    #[test]
    fn tensor5_roundtrip() {
        let t = Tensor5::from_fn(Shape5::new(1, 1, 2, 2, 2), |_, _, d, h, w| {
            (d * 4 + h * 2 + w) as f32
        });
        assert_eq!(t.at(0, 0, 1, 1, 1), 7.0);
        assert_eq!(t.sum(), 28.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let r = Tensor5::random(Shape5::new(1, 1, 2, 2, 2), 0.0, 1.0, &mut rng);
        assert!(r.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn tensor5_from_vec_checks_length() {
        let err = Tensor5::from_vec(Shape5::new(1, 1, 1, 2, 2), vec![0.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::DataLength { .. }));
    }

    #[test]
    fn tensor5_set_add_and_diff() {
        let mut t = Tensor5::zeros(Shape5::new(1, 1, 1, 2, 2));
        t.set(0, 0, 0, 0, 1, 4.0);
        t.add_at(0, 0, 0, 0, 1, 1.0);
        assert_eq!(t.at(0, 0, 0, 0, 1), 5.0);
        let z = Tensor5::zeros(Shape5::new(1, 1, 1, 2, 2));
        assert_eq!(t.max_abs_diff(&z).unwrap(), 5.0);
        let other = Tensor5::zeros(Shape5::new(1, 1, 2, 2, 2));
        assert!(t.max_abs_diff(&other).is_err());
    }
}
