//! Reference transposed convolution ("deconvolution") implementations.
//!
//! The ASV paper observes that the disparity-refinement stage of stereo DNNs
//! is built from deconvolution layers, and that executing them naively wastes
//! more than 75 % of the multiply-accumulates on zero operands introduced by
//! the zero-insertion upsampling step.  This module provides two *independent*
//! reference implementations of the standard deconvolution:
//!
//! * [`deconv2d_zero_insert`] / [`deconv3d_zero_insert`] — the textbook
//!   formulation: upsample the ifmap with interleaved zeros, then run a dense
//!   convolution.  This is the formulation Fig. 6 of the paper illustrates and
//!   the one whose wasted work the transformation removes.
//! * [`deconv2d_scatter`] / [`deconv3d_scatter`] — the gradient-of-convolution
//!   formulation that scatters each input element into the output.
//!
//! Having both lets the `asv-deconv` crate prove its sub-kernel decomposition
//! equivalent to *two* independently derived answers.

use crate::conv::{conv2d, conv3d, deconv_out_dim, Conv2dParams, Conv3dParams};
use crate::error::TensorError;
use crate::shape::{Shape4, Shape5};
use crate::tensor::{Tensor4, Tensor5};
use crate::Result;

/// Parameters of a transposed convolution.
///
/// `stride` is the upsampling factor; `padding` is the amount cropped from
/// each border of the full output (the usual `conv_transpose` convention:
/// `out = (in - 1) * stride + kernel - 2 * padding`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeconvParams {
    /// Upsampling stride.
    pub stride: usize,
    /// Output cropping (mirror of convolution padding).
    pub padding: usize,
}

impl Default for DeconvParams {
    fn default() -> Self {
        Self {
            stride: 2,
            padding: 0,
        }
    }
}

/// Zero-inserted upsampling of a 4-D tensor: element `(h, w)` moves to
/// `(h * stride, w * stride)` and all other positions are zero.
///
/// This is the explicit "upsample with zero padding" step of the standard
/// deconvolution in Fig. 6 of the paper.
pub fn zero_insert_upsample2d(input: &Tensor4, stride: usize) -> Result<Tensor4> {
    if stride == 0 {
        return Err(TensorError::invalid_parameter("stride must be non-zero"));
    }
    let ish = input.shape();
    if ish.h == 0 || ish.w == 0 {
        return Err(TensorError::invalid_parameter("empty spatial dimensions"));
    }
    let oh = (ish.h - 1) * stride + 1;
    let ow = (ish.w - 1) * stride + 1;
    let mut out = Tensor4::zeros(Shape4::new(ish.n, ish.c, oh, ow));
    for n in 0..ish.n {
        for c in 0..ish.c {
            for h in 0..ish.h {
                for w in 0..ish.w {
                    out.set(n, c, h * stride, w * stride, input.at(n, c, h, w));
                }
            }
        }
    }
    Ok(out)
}

/// Zero-inserted upsampling of a 5-D tensor (see [`zero_insert_upsample2d`]).
pub fn zero_insert_upsample3d(input: &Tensor5, stride: usize) -> Result<Tensor5> {
    if stride == 0 {
        return Err(TensorError::invalid_parameter("stride must be non-zero"));
    }
    let ish = input.shape();
    if ish.d == 0 || ish.h == 0 || ish.w == 0 {
        return Err(TensorError::invalid_parameter("empty spatial dimensions"));
    }
    let od = (ish.d - 1) * stride + 1;
    let oh = (ish.h - 1) * stride + 1;
    let ow = (ish.w - 1) * stride + 1;
    let mut out = Tensor5::zeros(Shape5::new(ish.n, ish.c, od, oh, ow));
    for n in 0..ish.n {
        for c in 0..ish.c {
            for d in 0..ish.d {
                for h in 0..ish.h {
                    for w in 0..ish.w {
                        out.set(
                            n,
                            c,
                            d * stride,
                            h * stride,
                            w * stride,
                            input.at(n, c, d, h, w),
                        );
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Flips a 2-D kernel along both spatial axes (per output/input channel).
fn flip_kernel2d(kernel: &Tensor4) -> Tensor4 {
    let sh = kernel.shape();
    Tensor4::from_fn(sh, |oc, ic, ky, kx| {
        kernel.at(oc, ic, sh.h - 1 - ky, sh.w - 1 - kx)
    })
}

/// Flips a 3-D kernel along all three spatial axes.
fn flip_kernel3d(kernel: &Tensor5) -> Tensor5 {
    let sh = kernel.shape();
    Tensor5::from_fn(sh, |oc, ic, kd, ky, kx| {
        kernel.at(oc, ic, sh.d - 1 - kd, sh.h - 1 - ky, sh.w - 1 - kx)
    })
}

/// Transposed 2-D convolution implemented as zero-insertion followed by a
/// dense convolution with the spatially flipped kernel.
///
/// `kernel` is laid out `Ci×Co×KH×KW` (input-channel major), matching the
/// convention of deep-learning frameworks for `conv_transpose` weights.
///
/// # Errors
///
/// Returns an error when the kernel/input channel counts disagree, when the
/// stride is zero, or when the padding exceeds the produced output.
pub fn deconv2d_zero_insert(
    input: &Tensor4,
    kernel: &Tensor4,
    params: &DeconvParams,
) -> Result<Tensor4> {
    let ish = input.shape();
    let ksh = kernel.shape();
    if ish.c != ksh.n {
        return Err(TensorError::shape_mismatch(format!(
            "deconv2d: input channels {} vs kernel input channels {}",
            ish.c, ksh.n
        )));
    }
    let expected_h = deconv_out_dim(ish.h, ksh.h, params.stride, params.padding)
        .ok_or_else(|| TensorError::invalid_parameter("deconv output height underflows"))?;
    let expected_w = deconv_out_dim(ish.w, ksh.w, params.stride, params.padding)
        .ok_or_else(|| TensorError::invalid_parameter("deconv output width underflows"))?;

    // Upsample with zeros, then convolve with the flipped kernel using "full"
    // padding reduced by the requested output cropping.
    let upsampled = zero_insert_upsample2d(input, params.stride)?;
    // Rearrange kernel from Ci x Co x KH x KW to Co x Ci x KH x KW and flip.
    let swapped = Tensor4::from_fn(Shape4::new(ksh.c, ksh.n, ksh.h, ksh.w), |oc, ic, ky, kx| {
        kernel.at(ic, oc, ky, kx)
    });
    let flipped = flip_kernel2d(&swapped);
    if ksh.h < 1 || ksh.w < 1 {
        return Err(TensorError::invalid_parameter("kernel must be non-empty"));
    }
    let full_pad_h = ksh.h - 1;
    if params.padding > full_pad_h {
        return Err(TensorError::invalid_parameter(
            "padding larger than kernel-1 is not supported by the reference deconvolution",
        ));
    }
    let conv_pad = full_pad_h - params.padding;
    let out = conv2d(
        &upsampled,
        &flipped,
        &Conv2dParams {
            stride: 1,
            padding: conv_pad,
        },
    )?;
    let osh = out.shape();
    if osh.h != expected_h || osh.w != expected_w {
        // Non-square kernels with padding can need asymmetric cropping; crop or
        // report a mismatch explicitly rather than returning a silently wrong
        // size.
        return Err(TensorError::shape_mismatch(format!(
            "deconv2d reference produced {}x{}, expected {}x{} (non-square kernels with padding need symmetric padding)",
            osh.h, osh.w, expected_h, expected_w
        )));
    }
    Ok(out)
}

/// Transposed 2-D convolution implemented by scattering each input element
/// into the output (the gradient-of-convolution formulation).
///
/// `kernel` layout is `Ci×Co×KH×KW`, identical to [`deconv2d_zero_insert`].
///
/// # Errors
///
/// Returns an error when the kernel/input channel counts disagree or the
/// stride is zero.
pub fn deconv2d_scatter(
    input: &Tensor4,
    kernel: &Tensor4,
    params: &DeconvParams,
) -> Result<Tensor4> {
    if params.stride == 0 {
        return Err(TensorError::invalid_parameter("stride must be non-zero"));
    }
    let ish = input.shape();
    let ksh = kernel.shape();
    if ish.c != ksh.n {
        return Err(TensorError::shape_mismatch(format!(
            "deconv2d: input channels {} vs kernel input channels {}",
            ish.c, ksh.n
        )));
    }
    let oh = deconv_out_dim(ish.h, ksh.h, params.stride, params.padding)
        .ok_or_else(|| TensorError::invalid_parameter("deconv output height underflows"))?;
    let ow = deconv_out_dim(ish.w, ksh.w, params.stride, params.padding)
        .ok_or_else(|| TensorError::invalid_parameter("deconv output width underflows"))?;
    let mut out = Tensor4::zeros(Shape4::new(ish.n, ksh.c, oh, ow));
    let pad = params.padding as isize;
    let in_data = input.as_slice();
    let k_data = kernel.as_slice();
    // Each (batch, output-channel) plane receives scatters from every input
    // pixel but from no other plane, so the planes parallelize; a given
    // output cell still accumulates its contributions in (ic, iy, ix, ky, kx)
    // order, exactly as the original scatter order did.
    let fill = |n: usize, oc: usize, plane: &mut [f32]| {
        for ic in 0..ish.c {
            for iy in 0..ish.h {
                for ix in 0..ish.w {
                    let v = in_data[ish.index(n, ic, iy, ix)];
                    if v == 0.0 {
                        continue;
                    }
                    for ky in 0..ksh.h {
                        let oy = (iy * params.stride + ky) as isize - pad;
                        if oy < 0 || oy >= oh as isize {
                            continue;
                        }
                        for kx in 0..ksh.w {
                            let ox = (ix * params.stride + kx) as isize - pad;
                            if ox < 0 || ox >= ow as isize {
                                continue;
                            }
                            plane[oy as usize * ow + ox as usize] +=
                                v * k_data[ksh.index(ic, oc, ky, kx)];
                        }
                    }
                }
            }
        }
    };
    crate::conv::drive_planes(out.as_mut_slice(), oh * ow, ksh.c, &fill);
    Ok(out)
}

/// Transposed 3-D convolution by output scatter.  `kernel` layout is
/// `Ci×Co×KD×KH×KW`.
///
/// # Errors
///
/// Returns an error when the kernel/input channel counts disagree or the
/// stride is zero.
pub fn deconv3d_scatter(
    input: &Tensor5,
    kernel: &Tensor5,
    params: &DeconvParams,
) -> Result<Tensor5> {
    if params.stride == 0 {
        return Err(TensorError::invalid_parameter("stride must be non-zero"));
    }
    let ish = input.shape();
    let ksh = kernel.shape();
    if ish.c != ksh.n {
        return Err(TensorError::shape_mismatch(format!(
            "deconv3d: input channels {} vs kernel input channels {}",
            ish.c, ksh.n
        )));
    }
    let od = deconv_out_dim(ish.d, ksh.d, params.stride, params.padding)
        .ok_or_else(|| TensorError::invalid_parameter("deconv output depth underflows"))?;
    let oh = deconv_out_dim(ish.h, ksh.h, params.stride, params.padding)
        .ok_or_else(|| TensorError::invalid_parameter("deconv output height underflows"))?;
    let ow = deconv_out_dim(ish.w, ksh.w, params.stride, params.padding)
        .ok_or_else(|| TensorError::invalid_parameter("deconv output width underflows"))?;
    let mut out = Tensor5::zeros(Shape5::new(ish.n, ksh.c, od, oh, ow));
    let pad = params.padding as isize;
    let in_data = input.as_slice();
    let k_data = kernel.as_slice();
    // Plane-parallel scatter; see `deconv2d_scatter` for the ordering
    // argument.
    let fill = |n: usize, oc: usize, plane: &mut [f32]| {
        for ic in 0..ish.c {
            for iz in 0..ish.d {
                for iy in 0..ish.h {
                    for ix in 0..ish.w {
                        let v = in_data[ish.index(n, ic, iz, iy, ix)];
                        if v == 0.0 {
                            continue;
                        }
                        for kz in 0..ksh.d {
                            let oz = (iz * params.stride + kz) as isize - pad;
                            if oz < 0 || oz >= od as isize {
                                continue;
                            }
                            for ky in 0..ksh.h {
                                let oy = (iy * params.stride + ky) as isize - pad;
                                if oy < 0 || oy >= oh as isize {
                                    continue;
                                }
                                for kx in 0..ksh.w {
                                    let ox = (ix * params.stride + kx) as isize - pad;
                                    if ox < 0 || ox >= ow as isize {
                                        continue;
                                    }
                                    plane[(oz as usize * oh + oy as usize) * ow + ox as usize] +=
                                        v * k_data[ksh.index(ic, oc, kz, ky, kx)];
                                }
                            }
                        }
                    }
                }
            }
        }
    };
    crate::conv::drive_planes(out.as_mut_slice(), od * oh * ow, ksh.c, &fill);
    Ok(out)
}

/// Transposed 3-D convolution implemented as zero-insertion followed by a
/// dense 3-D convolution with the flipped kernel (`Ci×Co×KD×KH×KW` layout).
///
/// # Errors
///
/// Same error conditions as [`deconv2d_zero_insert`].
pub fn deconv3d_zero_insert(
    input: &Tensor5,
    kernel: &Tensor5,
    params: &DeconvParams,
) -> Result<Tensor5> {
    let ish = input.shape();
    let ksh = kernel.shape();
    if ish.c != ksh.n {
        return Err(TensorError::shape_mismatch(format!(
            "deconv3d: input channels {} vs kernel input channels {}",
            ish.c, ksh.n
        )));
    }
    if ksh.d < 1 || ksh.h < 1 || ksh.w < 1 {
        return Err(TensorError::invalid_parameter("kernel must be non-empty"));
    }
    if params.padding > ksh.d - 1 {
        return Err(TensorError::invalid_parameter(
            "padding larger than kernel-1 is not supported by the reference deconvolution",
        ));
    }
    let upsampled = zero_insert_upsample3d(input, params.stride)?;
    let swapped = Tensor5::from_fn(
        Shape5::new(ksh.c, ksh.n, ksh.d, ksh.h, ksh.w),
        |oc, ic, kd, ky, kx| kernel.at(ic, oc, kd, ky, kx),
    );
    let flipped = flip_kernel3d(&swapped);
    let conv_pad = ksh.d - 1 - params.padding;
    conv3d(
        &upsampled,
        &flipped,
        &Conv3dParams {
            stride: 1,
            padding: conv_pad,
        },
    )
}

/// Fraction of multiply-accumulate operations in a zero-insertion
/// deconvolution that involve a zero operand introduced by the upsampling.
///
/// The paper reports "over 75 % of redundant computations" for stride-2
/// deconvolution; this helper makes that number reproducible: for stride `s`
/// in `dims` dimensions the density of non-zero ifmap positions after
/// upsampling is `1 / s^dims`, so the redundant fraction is `1 - 1/s^dims`.
pub fn zero_insertion_redundancy(stride: usize, dims: u32) -> f64 {
    if stride == 0 {
        return 0.0;
    }
    1.0 - 1.0 / (stride.pow(dims) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn upsample_places_elements_on_stride_grid() {
        let input = Tensor4::from_fn(Shape4::new(1, 1, 2, 2), |_, _, h, w| (h * 2 + w + 1) as f32);
        let up = zero_insert_upsample2d(&input, 2).unwrap();
        assert_eq!(up.shape(), Shape4::new(1, 1, 3, 3));
        assert_eq!(up.at(0, 0, 0, 0), 1.0);
        assert_eq!(up.at(0, 0, 0, 2), 2.0);
        assert_eq!(up.at(0, 0, 2, 0), 3.0);
        assert_eq!(up.at(0, 0, 2, 2), 4.0);
        assert_eq!(up.at(0, 0, 1, 1), 0.0);
        assert_eq!(up.sum(), input.sum());
    }

    #[test]
    fn upsample_rejects_zero_stride() {
        let input = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        assert!(zero_insert_upsample2d(&input, 0).is_err());
    }

    #[test]
    fn scatter_and_zero_insert_agree_stride2() {
        let mut rng = SmallRng::seed_from_u64(11);
        let input = Tensor4::random(Shape4::new(1, 2, 4, 5), -1.0, 1.0, &mut rng);
        let kernel = Tensor4::random(Shape4::new(2, 3, 3, 3), -1.0, 1.0, &mut rng);
        let params = DeconvParams {
            stride: 2,
            padding: 0,
        };
        let a = deconv2d_zero_insert(&input, &kernel, &params).unwrap();
        let b = deconv2d_scatter(&input, &kernel, &params).unwrap();
        assert_eq!(a.shape(), b.shape());
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn scatter_and_zero_insert_agree_with_padding() {
        let mut rng = SmallRng::seed_from_u64(13);
        let input = Tensor4::random(Shape4::new(1, 1, 5, 5), -1.0, 1.0, &mut rng);
        let kernel = Tensor4::random(Shape4::new(1, 2, 4, 4), -1.0, 1.0, &mut rng);
        let params = DeconvParams {
            stride: 2,
            padding: 1,
        };
        let a = deconv2d_zero_insert(&input, &kernel, &params).unwrap();
        let b = deconv2d_scatter(&input, &kernel, &params).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn paper_figure6_shape() {
        // Fig. 6: a 3x3 ifmap deconvolved with a 3x3 kernel at stride 2 and no
        // extra padding of the upsampled map produces a 5x5 ofmap.
        let input = Tensor4::filled(Shape4::new(1, 1, 3, 3), 1.0);
        let kernel = Tensor4::filled(Shape4::new(1, 1, 3, 3), 1.0);
        let out = deconv2d_scatter(
            &input,
            &kernel,
            &DeconvParams {
                stride: 2,
                padding: 1,
            },
        )
        .unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 5, 5));
    }

    #[test]
    fn impulse_response_follows_framework_convention() {
        // This crate follows the deep-learning-framework convention for
        // transposed convolution (scatter with the kernel as stored).  The
        // paper's Fig. 6 uses the opposite (correlate-the-upsampled-ifmap)
        // convention, which differs by a spatial kernel flip; the paper-exact
        // convention and its sub-kernel decomposition live in `asv-deconv`.
        // With an impulse at ifmap (0,0) and kernel values 1..9 row-major, the
        // scatter places kernel element (1,1)=5 at output (0,0), (1,2)=6 at
        // output (0,1) and (2,2)=9 at output (1,1) for stride 2 / padding 1.
        let mut input = Tensor4::zeros(Shape4::new(1, 1, 3, 3));
        input.set(0, 0, 0, 0, 1.0);
        let kernel = Tensor4::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w + 1) as f32);
        let out = deconv2d_scatter(
            &input,
            &kernel,
            &DeconvParams {
                stride: 2,
                padding: 1,
            },
        )
        .unwrap();
        assert_eq!(out.at(0, 0, 0, 0), 5.0);
        assert_eq!(out.at(0, 0, 0, 1), 6.0);
        assert_eq!(out.at(0, 0, 1, 1), 9.0);
    }

    #[test]
    fn channel_mismatch_is_error() {
        let input = Tensor4::zeros(Shape4::new(1, 2, 3, 3));
        let kernel = Tensor4::zeros(Shape4::new(3, 1, 3, 3));
        assert!(deconv2d_scatter(&input, &kernel, &DeconvParams::default()).is_err());
        assert!(deconv2d_zero_insert(&input, &kernel, &DeconvParams::default()).is_err());
    }

    #[test]
    fn deconv3d_references_agree() {
        let mut rng = SmallRng::seed_from_u64(5);
        let input = Tensor5::random(Shape5::new(1, 2, 3, 3, 3), -1.0, 1.0, &mut rng);
        let kernel = Tensor5::random(Shape5::new(2, 2, 3, 3, 3), -1.0, 1.0, &mut rng);
        let params = DeconvParams {
            stride: 2,
            padding: 1,
        };
        let a = deconv3d_zero_insert(&input, &kernel, &params).unwrap();
        let b = deconv3d_scatter(&input, &kernel, &params).unwrap();
        assert_eq!(a.shape(), b.shape());
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn redundancy_matches_paper_claims() {
        // Stride-2 2-D deconvolution: 75 % of the upsampled map is zero.
        assert!((zero_insertion_redundancy(2, 2) - 0.75).abs() < 1e-12);
        // Stride-2 3-D deconvolution: 87.5 % zeros (the paper's "8x vs 4x"
        // padding comparison between 3-D and 2-D networks).
        assert!((zero_insertion_redundancy(2, 3) - 0.875).abs() < 1e-12);
        assert_eq!(zero_insertion_redundancy(0, 2), 0.0);
    }
}
