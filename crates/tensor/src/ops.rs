//! Element-wise and pooling operations used by the stereo DNN substrate and
//! the optical-flow / block-matching mappings of the ISM algorithm.

use crate::error::TensorError;
use crate::shape::Shape4;
use crate::tensor::Tensor4;
use crate::Result;

/// Rectified linear unit applied element-wise, returning a new tensor.
pub fn relu(input: &Tensor4) -> Tensor4 {
    input.map(|v| v.max(0.0))
}

/// Leaky rectified linear unit with the given negative slope.
pub fn leaky_relu(input: &Tensor4, negative_slope: f32) -> Tensor4 {
    input.map(|v| if v >= 0.0 { v } else { v * negative_slope })
}

/// Hyperbolic tangent applied element-wise (used by GAN generators).
pub fn tanh(input: &Tensor4) -> Tensor4 {
    input.map(f32::tanh)
}

/// Logistic sigmoid applied element-wise.
pub fn sigmoid(input: &Tensor4) -> Tensor4 {
    input.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// 2-D max pooling with a square window and matching stride.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] for a zero window and
/// [`TensorError::ShapeMismatch`] when the window does not fit.
pub fn max_pool2d(input: &Tensor4, window: usize) -> Result<Tensor4> {
    if window == 0 {
        return Err(TensorError::invalid_parameter(
            "pooling window must be non-zero",
        ));
    }
    let ish = input.shape();
    if ish.h < window || ish.w < window {
        return Err(TensorError::shape_mismatch(format!(
            "max_pool2d: window {window} does not fit input {ish}"
        )));
    }
    let oh = ish.h / window;
    let ow = ish.w / window;
    let mut out = Tensor4::zeros(Shape4::new(ish.n, ish.c, oh, ow));
    for n in 0..ish.n {
        for c in 0..ish.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..window {
                        for kx in 0..window {
                            best = best.max(input.at(n, c, oy * window + ky, ox * window + kx));
                        }
                    }
                    out.set(n, c, oy, ox, best);
                }
            }
        }
    }
    Ok(out)
}

/// 2-D average pooling with a square window and matching stride.
///
/// # Errors
///
/// Same error conditions as [`max_pool2d`].
pub fn avg_pool2d(input: &Tensor4, window: usize) -> Result<Tensor4> {
    if window == 0 {
        return Err(TensorError::invalid_parameter(
            "pooling window must be non-zero",
        ));
    }
    let ish = input.shape();
    if ish.h < window || ish.w < window {
        return Err(TensorError::shape_mismatch(format!(
            "avg_pool2d: window {window} does not fit input {ish}"
        )));
    }
    let oh = ish.h / window;
    let ow = ish.w / window;
    let norm = (window * window) as f32;
    let mut out = Tensor4::zeros(Shape4::new(ish.n, ish.c, oh, ow));
    for n in 0..ish.n {
        for c in 0..ish.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc += input.at(n, c, oy * window + ky, ox * window + kx);
                        }
                    }
                    out.set(n, c, oy, ox, acc / norm);
                }
            }
        }
    }
    Ok(out)
}

/// Bilinear upsampling by an integer factor.
///
/// Used as the cheap alternative to learned deconvolution when constructing
/// reference disparity-refinement pipelines.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] when `factor == 0`.
pub fn bilinear_upsample2d(input: &Tensor4, factor: usize) -> Result<Tensor4> {
    if factor == 0 {
        return Err(TensorError::invalid_parameter(
            "upsample factor must be non-zero",
        ));
    }
    let ish = input.shape();
    let oh = ish.h * factor;
    let ow = ish.w * factor;
    let mut out = Tensor4::zeros(Shape4::new(ish.n, ish.c, oh, ow));
    for n in 0..ish.n {
        for c in 0..ish.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    // Map the output pixel centre back into input coordinates.
                    let fy = (oy as f32 + 0.5) / factor as f32 - 0.5;
                    let fx = (ox as f32 + 0.5) / factor as f32 - 0.5;
                    let y0 = fy.floor().clamp(0.0, (ish.h - 1) as f32) as usize;
                    let x0 = fx.floor().clamp(0.0, (ish.w - 1) as f32) as usize;
                    let y1 = (y0 + 1).min(ish.h - 1);
                    let x1 = (x0 + 1).min(ish.w - 1);
                    let dy = (fy - y0 as f32).clamp(0.0, 1.0);
                    let dx = (fx - x0 as f32).clamp(0.0, 1.0);
                    let v = input.at(n, c, y0, x0) * (1.0 - dy) * (1.0 - dx)
                        + input.at(n, c, y0, x1) * (1.0 - dy) * dx
                        + input.at(n, c, y1, x0) * dy * (1.0 - dx)
                        + input.at(n, c, y1, x1) * dy * dx;
                    out.set(n, c, oy, ox, v);
                }
            }
        }
    }
    Ok(out)
}

/// Element-wise addition of two tensors of identical shape.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn add(a: &Tensor4, b: &Tensor4) -> Result<Tensor4> {
    if a.shape() != b.shape() {
        return Err(TensorError::shape_mismatch(format!(
            "add: {} vs {}",
            a.shape(),
            b.shape()
        )));
    }
    let mut out = a.clone();
    for (o, v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += v;
    }
    Ok(out)
}

/// Concatenates two tensors along the channel axis.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when batch or spatial dimensions
/// differ.
pub fn concat_channels(a: &Tensor4, b: &Tensor4) -> Result<Tensor4> {
    let (sa, sb) = (a.shape(), b.shape());
    if sa.n != sb.n || sa.h != sb.h || sa.w != sb.w {
        return Err(TensorError::shape_mismatch(format!(
            "concat_channels: {sa} vs {sb}"
        )));
    }
    let out_shape = Shape4::new(sa.n, sa.c + sb.c, sa.h, sa.w);
    let mut out = Tensor4::zeros(out_shape);
    for n in 0..sa.n {
        for h in 0..sa.h {
            for w in 0..sa.w {
                for c in 0..sa.c {
                    out.set(n, c, h, w, a.at(n, c, h, w));
                }
                for c in 0..sb.c {
                    out.set(n, sa.c + c, h, w, b.at(n, c, h, w));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_leaky_relu() {
        let t = Tensor4::from_vec(Shape4::new(1, 1, 1, 4), vec![-2.0, -0.5, 0.0, 3.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 0.0, 3.0]);
        assert_eq!(leaky_relu(&t, 0.1).as_slice(), &[-0.2, -0.05, 0.0, 3.0]);
    }

    #[test]
    fn tanh_and_sigmoid_ranges() {
        let t = Tensor4::from_vec(Shape4::new(1, 1, 1, 3), vec![-10.0, 0.0, 10.0]).unwrap();
        let th = tanh(&t);
        assert!(th.at(0, 0, 0, 0) < -0.99 && th.at(0, 0, 0, 2) > 0.99);
        assert_eq!(th.at(0, 0, 0, 1), 0.0);
        let sg = sigmoid(&t);
        assert!(sg.at(0, 0, 0, 0) < 0.01 && sg.at(0, 0, 0, 2) > 0.99);
        assert!((sg.at(0, 0, 0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn max_pool_selects_maximum() {
        let t = Tensor4::from_fn(Shape4::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32);
        let out = max_pool2d(&t, 2).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 2, 2));
        assert_eq!(out.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let t = Tensor4::from_fn(Shape4::new(1, 1, 2, 2), |_, _, h, w| (h * 2 + w) as f32);
        let out = avg_pool2d(&t, 2).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 1, 1));
        assert!((out.at(0, 0, 0, 0) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn pooling_rejects_bad_windows() {
        let t = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        assert!(max_pool2d(&t, 0).is_err());
        assert!(max_pool2d(&t, 3).is_err());
        assert!(avg_pool2d(&t, 0).is_err());
        assert!(avg_pool2d(&t, 3).is_err());
    }

    #[test]
    fn bilinear_upsample_preserves_constant_images() {
        let t = Tensor4::filled(Shape4::new(1, 1, 3, 3), 2.5);
        let out = bilinear_upsample2d(&t, 2).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 6, 6));
        assert!(out.as_slice().iter().all(|&v| (v - 2.5).abs() < 1e-6));
        assert!(bilinear_upsample2d(&t, 0).is_err());
    }

    #[test]
    fn bilinear_upsample_interpolates_ramp() {
        let t = Tensor4::from_fn(Shape4::new(1, 1, 1, 2), |_, _, _, w| w as f32);
        let out = bilinear_upsample2d(&t, 2).unwrap();
        // The ramp 0,1 upsampled 2x should be monotonically non-decreasing.
        let row: Vec<f32> = (0..4).map(|w| out.at(0, 0, 0, w)).collect();
        assert!(row.windows(2).all(|p| p[0] <= p[1] + 1e-6));
        assert!(row[0] >= 0.0 && row[3] <= 1.0);
    }

    #[test]
    fn add_requires_matching_shapes() {
        let a = Tensor4::filled(Shape4::new(1, 1, 2, 2), 1.0);
        let b = Tensor4::filled(Shape4::new(1, 1, 2, 2), 2.0);
        let c = add(&a, &b).unwrap();
        assert!(c.as_slice().iter().all(|&v| (v - 3.0).abs() < 1e-6));
        let d = Tensor4::zeros(Shape4::new(1, 2, 2, 2));
        assert!(add(&a, &d).is_err());
    }

    #[test]
    fn concat_channels_stacks() {
        let a = Tensor4::filled(Shape4::new(1, 1, 2, 2), 1.0);
        let b = Tensor4::filled(Shape4::new(1, 2, 2, 2), 2.0);
        let c = concat_channels(&a, &b).unwrap();
        assert_eq!(c.shape(), Shape4::new(1, 3, 2, 2));
        assert_eq!(c.at(0, 0, 0, 0), 1.0);
        assert_eq!(c.at(0, 1, 1, 1), 2.0);
        assert_eq!(c.at(0, 2, 1, 1), 2.0);
        let bad = Tensor4::zeros(Shape4::new(1, 1, 3, 2));
        assert!(concat_channels(&a, &bad).is_err());
    }
}
