//! Augmented-reality headset power budgeting: pick the ISM propagation window
//! that meets a frame-rate target within a per-frame energy budget.
//!
//! AR headsets need continuous depth at 30+ FPS from a battery measured in
//! watt-hours; this example sweeps the propagation window and reports, for
//! each, the modelled frame rate, energy per frame and the accuracy loss
//! measured on a synthetic sequence — the trade-off ASV exposes to the system
//! integrator.
//!
//! Run with: `cargo run --release --example ar_headset`

use asv::system::{AsvConfig, AsvSystem};
use asv_scene::{SceneConfig, StereoSequence};

/// Frame-rate target of the headset's depth subsystem.
const TARGET_FPS: f64 = 30.0;
/// Energy budget per depth frame, in millijoules.
const ENERGY_BUDGET_MJ: f64 = 40.0;

fn main() {
    let scene = SceneConfig::scene_flow_like(96, 64).with_seed(11);
    let sequence = StereoSequence::generate(&scene, 8);

    println!("window   fps      mJ/frame   accuracy loss   verdict");
    for window in [1usize, 2, 4, 8] {
        let system = AsvSystem::new(AsvConfig {
            propagation_window: window,
            max_disparity: 32,
            frame_width: scene.width,
            frame_height: scene.height,
            network: "PSMNet".to_owned(),
            metric: asv::CostMetric::Sad,
        })
        .expect("known network");
        // Full system variant (ISM + deconvolution optimizations).
        let report = system.per_frame_report(asv::perf::AsvVariant::IsmDco);
        let accuracy = system
            .evaluate_accuracy(&sequence)
            .expect("accuracy evaluates");
        let fps = report.fps();
        let mj = report.energy_joules * 1e3;
        let ok = fps >= TARGET_FPS && mj <= ENERGY_BUDGET_MJ;
        println!(
            "PW-{window:<4} {fps:>8.2} {mj:>10.2} {loss:>13.2}pp   {verdict}",
            loss = accuracy.accuracy_loss * 100.0,
            verdict = if ok { "meets budget" } else { "over budget" }
        );
    }
    println!("\n(target: ≥{TARGET_FPS} FPS and ≤{ENERGY_BUDGET_MJ} mJ per frame)");
}
