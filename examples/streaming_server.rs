//! Streaming server: serve N simulated camera streams through the sharded
//! `asv-runtime` cluster and print per-shard telemetry plus a Prometheus
//! scrape sample.
//!
//! Each "camera" is a synthetic stereo sequence turned into a frame-by-frame
//! feed with `StereoSequence::into_stream()` and driven by its own feeder
//! thread.  Frames enter through the async ingest front-end (bounded
//! submission queue, per-session quota), are routed to a scheduler shard by
//! consistent hashing of the camera name, and the shard's worker pool
//! multiplexes its sessions round-robin under bounded-inbox backpressure.
//!
//! Run with: `cargo run --release --example streaming_server`

use asv_system::asv::system::{AsvConfig, AsvSystem};
use asv_system::runtime::{
    Cluster, ClusterConfig, Ingest, IngestConfig, SchedulerConfig, ShedPolicy,
};
use asv_system::scene::{SceneConfig, StereoSequence};

const SHARDS: usize = 2;
const CAMERAS: usize = 4;
const FRAMES_PER_CAMERA: usize = 6;
const WIDTH: usize = 64;
const HEIGHT: usize = 48;

fn main() {
    // 1. One ASV system configuration shared by every stream.
    let system = AsvSystem::new(AsvConfig {
        propagation_window: 4,
        max_disparity: 32,
        frame_width: WIDTH,
        frame_height: HEIGHT,
        network: "DispNet".to_owned(),
        metric: asv::CostMetric::Sad,
    })
    .expect("known network");

    // 2. The cluster: SHARDS independent schedulers, each with its own
    //    worker pool, two queued frames per camera.
    let workers_per_shard = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .div_ceil(SHARDS)
        .max(1);
    let cluster = Cluster::new(
        ClusterConfig::new(SHARDS).with_shard_config(
            SchedulerConfig::per_core()
                .with_workers(workers_per_shard)
                .with_inbox_capacity(2),
        ),
    );
    println!(
        "serving {CAMERAS} cameras x {FRAMES_PER_CAMERA} frames ({WIDTH}x{HEIGHT}) \
         over {SHARDS} shards x {workers_per_shard} workers"
    );

    // 3. The async ingestion front-end: feeders hand frames off here and the
    //    forwarder pool performs the (possibly blocking) shard submits.
    let ingest = Ingest::new(
        IngestConfig::default()
            .with_policy(ShedPolicy::Block)
            .with_queue_capacity(CAMERAS * 2)
            .with_session_quota(2),
    );

    // 4. One session + one feeder thread per camera, placed by consistent
    //    hashing of the camera name.
    let routes: Vec<_> = (0..CAMERAS)
        .map(|camera| {
            let placed =
                cluster.add_session(&format!("camera-{camera}"), system.pipeline().state());
            println!("  camera-{camera} -> shard {}", placed.shard());
            ingest.register(placed.handle().clone())
        })
        .collect();
    std::thread::scope(|scope| {
        for (camera, route) in routes.iter().enumerate() {
            let route = route.clone();
            scope.spawn(move || {
                let scene = SceneConfig::scene_flow_like(WIDTH, HEIGHT)
                    .with_seed(7 + camera as u64)
                    .with_objects(3);
                let stream = StereoSequence::generate(&scene, FRAMES_PER_CAMERA).into_stream();
                for frame in stream {
                    // Returns quickly; admission control blocks only when the
                    // submission queue or this camera's quota is exhausted.
                    if route.submit(frame.left, frame.right).is_err() {
                        eprintln!("camera {camera}: route failed, stopping feed");
                        break;
                    }
                }
            });
        }
    });

    // 5. Drain the front-end into the shards, then shut the shards down.
    let stats = ingest.join();
    let report = cluster.join();

    println!("\nshard  sessions  frames  key  p50(us)  p95(us)  p99(us)  peak-queue");
    for (shard, runtime) in report.shards.iter().enumerate() {
        let a = &runtime.aggregate;
        println!(
            "{:>5}  {:>8}  {:>6}  {:>3}  {:>7}  {:>7}  {:>7}  {:>10}",
            shard,
            a.sessions,
            a.frames_processed,
            a.key_frames,
            a.service_latency.p50_us(),
            a.service_latency.p95_us(),
            a.service_latency.p99_us(),
            a.peak_queue_depth,
        );
    }
    let agg = &report.aggregate;
    println!(
        "\ncluster: {} frames in {:.2}s = {:.2} frames/s  (key ratio {:.3}, \
         ingest accepted {} / forwarded {} / shed {})",
        agg.frames_processed,
        agg.wall_seconds,
        agg.frames_per_second(),
        agg.key_frame_ratio(),
        stats.accepted(),
        stats.forwarded(),
        stats.shed(),
    );

    // 6. The scrape body a /metrics endpoint would serve (counters + gauges;
    //    the full output also carries the latency histograms).
    println!("\nprometheus scrape sample:");
    for line in report
        .render_prometheus()
        .lines()
        .filter(|l| !l.starts_with('#') && !l.contains("_bucket"))
        .take(18)
    {
        println!("  {line}");
    }
}
