//! Streaming server: serve N simulated camera streams through the sharded
//! `asv-runtime` cluster and print per-shard telemetry plus a Prometheus
//! scrape sample.
//!
//! Each "camera" is a synthetic stereo sequence turned into a frame-by-frame
//! feed with `StereoSequence::into_stream()` and driven by its own feeder
//! thread.  Frames enter through the async ingest front-end (bounded
//! submission queue, per-session quota), are routed to a scheduler shard by
//! consistent hashing of the camera name, and the shard's worker pool
//! multiplexes its sessions round-robin under bounded-inbox backpressure.
//!
//! While the cluster is live, a [`MetricsServer`] exposes it over HTTP
//! (`/metrics`, `/trace`, `/healthz`); the example scrapes its own endpoint
//! and validates the scrape with the same Prometheus-text parser the tests
//! use, so CI exercises the live observability path on every run.
//!
//! Run with: `cargo run --release --example streaming_server`

use asv_system::asv::system::{AsvConfig, AsvSystem};
use asv_system::runtime::{
    parse_scrape, ClientConfig, Cluster, ClusterConfig, FrameClient, FrameServer, FrameSink,
    Ingest, IngestConfig, MetricsServer, NetConfig, QosConfig, SchedulerConfig, SessionSlo,
    ShedPolicy, Supervisor,
};
use asv_system::scene::{SceneConfig, StereoSequence};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// One `GET` against the example's own endpoint, returning the body.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("well-formed HTTP response");
    assert!(
        head.starts_with("HTTP/1.1 200 OK"),
        "GET {path} answered {head}"
    );
    body.to_owned()
}

const SHARDS: usize = 2;
const CAMERAS: usize = 4;
const FRAMES_PER_CAMERA: usize = 6;
const WIDTH: usize = 64;
const HEIGHT: usize = 48;

fn main() {
    // 1. One ASV system configuration shared by every stream.
    let system = AsvSystem::new(AsvConfig {
        propagation_window: 4,
        max_disparity: 32,
        frame_width: WIDTH,
        frame_height: HEIGHT,
        network: "DispNet".to_owned(),
        metric: asv::CostMetric::Sad,
    })
    .expect("known network");

    // 2. The cluster: SHARDS independent schedulers, each with its own
    //    worker pool, two queued frames per camera.
    let workers_per_shard = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .div_ceil(SHARDS)
        .max(1);
    let cluster = Cluster::new(
        ClusterConfig::new(SHARDS).with_shard_config(
            SchedulerConfig::per_core()
                .with_workers(workers_per_shard)
                .with_inbox_capacity(2),
        ),
    );
    println!(
        "serving {CAMERAS} cameras x {FRAMES_PER_CAMERA} frames ({WIDTH}x{HEIGHT}) \
         over {SHARDS} shards x {workers_per_shard} workers"
    );

    // 3. The live observability endpoint: serves the cluster's telemetry
    //    and traces over HTTP for as long as the cluster runs.
    let server = MetricsServer::serve("127.0.0.1:0", Arc::new(cluster.observer()))
        .expect("bind metrics endpoint");
    let addr = server.local_addr();
    println!("metrics endpoint: http://{addr}/metrics (also /trace, /healthz)");

    // 4. The async ingestion front-end: feeders hand frames off here and the
    //    forwarder pool performs the (possibly blocking) shard submits.
    let ingest = Ingest::new(
        IngestConfig::default()
            .with_policy(ShedPolicy::Block)
            .with_queue_capacity(CAMERAS * 2)
            .with_session_quota(2),
    );

    // 5. One SLO-managed session + one feeder thread per camera, placed by
    //    consistent hashing of the camera name.  The SLO is generous (2 s
    //    p95), so the adaptive-QoS controller observes every frame but never
    //    actuates — output stays byte-identical to batch while the
    //    per-session `asv_qos_level` gauge goes live on `/metrics`.
    let slo = SessionSlo::p95_step_us(2_000_000);
    let routes: Vec<_> = (0..CAMERAS)
        .map(|camera| {
            let placed = cluster.add_session_qos(
                &format!("camera-{camera}"),
                system.pipeline().state(),
                QosConfig::new(slo),
            );
            println!("  camera-{camera} -> shard {}", placed.shard());
            ingest.register(placed.handle().clone())
        })
        .collect();
    std::thread::scope(|scope| {
        for (camera, route) in routes.iter().enumerate() {
            let route = route.clone();
            scope.spawn(move || {
                let scene = SceneConfig::scene_flow_like(WIDTH, HEIGHT)
                    .with_seed(7 + camera as u64)
                    .with_objects(3);
                let stream = StereoSequence::generate(&scene, FRAMES_PER_CAMERA).into_stream();
                for frame in stream {
                    // Returns quickly; admission control blocks only when the
                    // submission queue or this camera's quota is exhausted.
                    if route.submit(frame.left, frame.right).is_err() {
                        eprintln!("camera {camera}: route failed, stopping feed");
                        break;
                    }
                }
            });
        }
    });

    // 6. Drain the front-end into the shards, then scrape the live endpoint
    //    once every frame has been processed.  The scrape must parse with
    //    the same Prometheus-text parser the tests use — a malformed line
    //    here fails the CI run.
    let stats = ingest.join();
    let observer = cluster.observer();
    let expected = (CAMERAS * FRAMES_PER_CAMERA) as u64;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while observer
        .telemetry()
        .iter()
        .map(|shard| shard.frames_processed)
        .sum::<u64>()
        < expected
    {
        assert!(
            std::time::Instant::now() < deadline,
            "cluster did not process {expected} frames in time"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(http_get(addr, "/healthz"), "ok\n");
    let scrape = http_get(addr, "/metrics");
    let samples = parse_scrape(&scrape).expect("live /metrics scrape parses cleanly");
    let processed: f64 = samples
        .iter()
        .filter(|s| s.name == "asv_frames_processed_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(processed, expected as f64, "scrape saw every frame");
    let stage_series = samples
        .iter()
        .filter(|s| s.name == "asv_stage_latency_microseconds_count")
        .count();
    if asv::trace::TraceMode::from_env() == asv::trace::TraceMode::Off {
        assert_eq!(stage_series, 0, "ASV_TRACE=off records no stage spans");
    } else {
        assert!(stage_series > 0, "scrape carries per-stage histograms");
    }
    // Each SLO-managed camera exports its live degradation level; with the
    // generous SLO every gauge must read 0 (full quality, zero actuations).
    let qos_levels: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "asv_qos_level")
        .collect();
    if asv_system::runtime::qos_enabled_from_env() {
        assert_eq!(
            qos_levels.len(),
            CAMERAS,
            "every SLO-managed camera exports an asv_qos_level gauge"
        );
        for level in &qos_levels {
            assert_eq!(
                level.value,
                0.0,
                "camera {:?} degraded under a generous SLO",
                level.label("session")
            );
        }
        let actuations: f64 = samples
            .iter()
            .filter(|s| s.name == "asv_qos_actuations_total")
            .map(|s| s.value)
            .sum();
        assert_eq!(actuations, 0.0, "generous SLO must never actuate");
    } else {
        assert!(qos_levels.is_empty(), "ASV_QOS=off exports no level gauges");
    }
    let trace = http_get(addr, "/trace");
    assert!(trace.starts_with("{\"traceEvents\":["), "Chrome trace JSON");
    println!(
        "live scrape: {} samples ({} per-stage series, {} QoS level gauges), /trace {} bytes",
        samples.len(),
        stage_series,
        qos_levels.len(),
        trace.len()
    );
    server.shutdown();

    // 7. Shut the shards down and print the final report.
    let report = cluster.join();

    println!("\nshard  sessions  frames  key  p50(us)  p95(us)  p99(us)  peak-queue");
    for (shard, runtime) in report.shards.iter().enumerate() {
        let a = &runtime.aggregate;
        println!(
            "{:>5}  {:>8}  {:>6}  {:>3}  {:>7}  {:>7}  {:>7}  {:>10}",
            shard,
            a.sessions,
            a.frames_processed,
            a.key_frames,
            a.service_latency.p50_us(),
            a.service_latency.p95_us(),
            a.service_latency.p99_us(),
            a.peak_queue_depth,
        );
    }
    let agg = &report.aggregate;
    println!(
        "\ncluster: {} frames in {:.2}s = {:.2} frames/s  (key ratio {:.3}, \
         ingest accepted {} / forwarded {} / shed {})",
        agg.frames_processed,
        agg.wall_seconds,
        agg.frames_per_second(),
        agg.key_frame_ratio(),
        stats.accepted(),
        stats.forwarded(),
        stats.shed(),
    );

    // 8. A sample of the final scrape body (counters, gauges and the
    //    per-stage latency sums; the full output also carries the buckets).
    println!("\nprometheus scrape sample:");
    for line in report
        .render_prometheus()
        .lines()
        .filter(|l| !l.starts_with('#') && !l.contains("_bucket"))
        .take(18)
    {
        println!("  {line}");
    }
    println!("  ...");
    for line in report
        .render_prometheus()
        .lines()
        .filter(|l| l.starts_with("asv_stage_latency_microseconds_sum"))
        .take(8)
    {
        println!("  {line}");
    }
    for line in report
        .render_prometheus()
        .lines()
        .filter(|l| l.starts_with("asv_qos"))
    {
        println!("  {line}");
    }

    // 9. Networked transport self-test: stream one camera over a loopback
    //    TCP link — wire-encoded frames, CRC validation, sequence gating,
    //    a supervisor-fronted shard — and verify the session's output is
    //    byte-identical to the batch pipeline.  The `ASV_NET_*` knobs
    //    configure both endpoints.
    let scene = SceneConfig::scene_flow_like(WIDTH, HEIGHT)
        .with_seed(99)
        .with_objects(3);
    let sequence = StereoSequence::generate(&scene, FRAMES_PER_CAMERA);
    let batch = system
        .pipeline()
        .process_sequence(&sequence)
        .expect("batch baseline");
    let net_cluster = Arc::new(Cluster::new(
        ClusterConfig::new(1).with_shard_config(SchedulerConfig::per_core().with_inbox_capacity(2)),
    ));
    let supervisor = Arc::new(Supervisor::new(Arc::clone(&net_cluster), {
        let pipe = system.pipeline().clone();
        move |_| pipe.state()
    }));
    let frame_server = FrameServer::serve(
        "127.0.0.1:0",
        Arc::clone(&supervisor) as Arc<dyn FrameSink>,
        net_cluster.transport_counters(),
        NetConfig::from_env(),
    )
    .expect("bind frame server");
    println!("\nframe transport: tcp://{}", frame_server.local_addr());
    let mut client = FrameClient::connect(frame_server.local_addr(), ClientConfig::from_env())
        .expect("connect frame client");
    for frame in sequence.frames() {
        client
            .send("tcp-camera", &frame.left, &frame.right)
            .expect("send frame");
    }
    client.flush().expect("flush acknowledgements");
    drop(client);
    frame_server.shutdown();
    let supervisor = Arc::try_unwrap(supervisor).expect("server released the sink");
    supervisor.finish();
    let net_report = Arc::try_unwrap(net_cluster)
        .expect("supervisor released the cluster")
        .join();
    let session = net_report
        .session_by_key("tcp-camera")
        .expect("streamed session present");
    assert!(
        session.error.is_none(),
        "tcp session failed: {:?}",
        session.error
    );
    assert_eq!(session.frames.len(), batch.frames.len(), "frame count");
    for (f, (got, want)) in session.frames.iter().zip(&batch.frames).enumerate() {
        assert!(
            got.disparity == want.disparity,
            "tcp-streamed frame {f} diverged from batch"
        );
    }
    println!(
        "tcp self-test: {} frames streamed over loopback, byte-identical to batch",
        batch.frames.len()
    );
}
