//! Streaming server: serve N concurrent simulated camera streams through
//! the `asv-runtime` scheduler and print per-session and aggregate
//! telemetry.
//!
//! Each "camera" is a synthetic stereo sequence turned into a frame-by-frame
//! feed with `StereoSequence::into_stream()` and driven by its own feeder
//! thread, exactly as live capture threads would: the feeder blocks
//! (backpressure) whenever its session's bounded inbox is full, while the
//! scheduler's worker pool multiplexes all sessions round-robin.
//!
//! Run with: `cargo run --release --example streaming_server`

use asv_system::asv::system::{AsvConfig, AsvSystem};
use asv_system::runtime::{Scheduler, SchedulerConfig};
use asv_system::scene::{SceneConfig, StereoSequence};

const CAMERAS: usize = 4;
const FRAMES_PER_CAMERA: usize = 6;
const WIDTH: usize = 64;
const HEIGHT: usize = 48;

fn main() {
    // 1. One ASV system configuration shared by every stream.
    let system = AsvSystem::new(AsvConfig {
        propagation_window: 4,
        max_disparity: 32,
        frame_width: WIDTH,
        frame_height: HEIGHT,
        network: "DispNet".to_owned(),
    })
    .expect("known network");

    // 2. The engine: a per-core worker pool, two queued frames per camera.
    let config = SchedulerConfig::per_core().with_inbox_capacity(2);
    println!(
        "serving {CAMERAS} cameras x {FRAMES_PER_CAMERA} frames ({WIDTH}x{HEIGHT}) over {} workers",
        config.workers
    );
    let scheduler = Scheduler::new(config);

    // 3. One session + one feeder thread per camera.
    let handles: Vec<_> = (0..CAMERAS)
        .map(|_| scheduler.add_session(system.pipeline().state()))
        .collect();
    std::thread::scope(|scope| {
        for (camera, handle) in handles.iter().enumerate() {
            let handle = handle.clone();
            scope.spawn(move || {
                let scene = SceneConfig::scene_flow_like(WIDTH, HEIGHT)
                    .with_seed(7 + camera as u64)
                    .with_objects(3);
                let stream = StereoSequence::generate(&scene, FRAMES_PER_CAMERA).into_stream();
                for frame in stream {
                    // Blocks while the session's inbox is full (backpressure).
                    if handle.submit(frame.left, frame.right).is_err() {
                        eprintln!("camera {camera}: session failed, stopping feed");
                        break;
                    }
                }
            });
        }
    });

    // 4. Drain, shut down and report.
    let report = scheduler.join();
    println!("\nsession  frames  key  non-key  p50(us)  p95(us)  p99(us)  peak-queue");
    for session in &report.sessions {
        let t = &session.telemetry;
        println!(
            "{:>7}  {:>6}  {:>3}  {:>7}  {:>7}  {:>7}  {:>7}  {:>10}",
            session.id.index(),
            t.frames_processed,
            t.key_frames,
            t.non_key_frames,
            t.service_latency.p50_us(),
            t.service_latency.p95_us(),
            t.service_latency.p99_us(),
            t.queue_depth.peak,
        );
    }
    let agg = &report.aggregate;
    println!(
        "\naggregate: {} frames in {:.2}s = {:.2} frames/s  (key ratio {:.3}, queue-wait p95 {} us)",
        agg.frames_processed,
        agg.wall_seconds,
        agg.frames_per_second(),
        agg.key_frame_ratio(),
        agg.queue_wait.p95_us(),
    );
}
