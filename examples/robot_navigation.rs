//! Mobile-robot obstacle detection: depth from stereo on a KITTI-like
//! sequence with the ISM pipeline, followed by triangulation to metric depth
//! and a simple nearest-obstacle check — the workload the paper's
//! introduction motivates (a robot must detect objects in close proximity in
//! real time on a tight power budget).
//!
//! Run with: `cargo run --release --example robot_navigation`

use asv::ism::FrameKind;
use asv::system::{AsvConfig, AsvSystem};
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::triangulation::CameraRig;

/// Distance below which the robot should slow down.
const CAUTION_DISTANCE_M: f64 = 1.5;

fn main() {
    // A noisier, faster-moving "driving" profile of the synthetic dataset.
    let scene = SceneConfig::kitti_like(128, 72).with_seed(7);
    let sequence = StereoSequence::generate(&scene, 8);

    let system = AsvSystem::new(AsvConfig {
        propagation_window: 4,
        max_disparity: 48,
        frame_width: scene.width,
        frame_height: scene.height,
        network: "GC-Net".to_owned(),
        // Navigation favours throughput: the census/Hamming key-frame metric
        // runs on the integer SIMD fast path and is robust to the lighting
        // changes of outdoor scenes.
        metric: asv::CostMetric::Census,
    })
    .expect("known network");
    let result = system
        .process_sequence(&sequence)
        .expect("sequence processes");

    // The robot's camera rig: a wide-baseline version of the Bumblebee2.
    let rig = CameraRig::new(0.20, 2.5e-3, 7.4e-6);
    println!("frame  mode        nearest obstacle  action");
    for (t, frame) in result.frames.iter().enumerate() {
        // Nearest obstacle = largest disparity anywhere in the lower half of
        // the image (the robot's path).
        let map = &frame.disparity;
        let mut max_disparity = 0.0f32;
        for y in map.height() / 2..map.height() {
            for x in 0..map.width() {
                if let Some(d) = map.get(x, y) {
                    max_disparity = max_disparity.max(d);
                }
            }
        }
        // The synthetic scene uses pixel-level disparities directly; scale
        // them to the rig's disparity range for the depth conversion.
        let depth_m = rig.depth_from_disparity_pixels(max_disparity as f64 * 4.0);
        let action = if depth_m < CAUTION_DISTANCE_M {
            "SLOW DOWN"
        } else {
            "cruise"
        };
        let mode = match frame.kind {
            FrameKind::KeyFrame => "key (DNN)",
            FrameKind::NonKeyFrame => "non-key   ",
        };
        println!("{t:>5}  {mode}  {depth_m:>13.2} m  {action}");
    }

    // Check the whole pipeline stays accurate enough for the task.
    let accuracy = system
        .evaluate_accuracy(&sequence)
        .expect("accuracy evaluates");
    println!(
        "\nthree-pixel error on this sequence: ISM {:.2}% vs per-frame DNN {:.2}%",
        accuracy.ism_error_rate * 100.0,
        accuracy.dnn_error_rate * 100.0
    );
}
