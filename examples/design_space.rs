//! Accelerator design-space exploration: how the deconvolution optimizations'
//! benefit changes with PE-array size and on-chip buffer capacity (the
//! experiment behind Fig. 12), plus the hardware-overhead accounting a chip
//! architect would check before adopting the ASV extensions.
//!
//! Run with: `cargo run --release --example design_space`

use asv_accel::overhead::AreaPowerBudget;
use asv_accel::systolic::SystolicAccelerator;
use asv_dataflow::{HwConfig, OptLevel};
use asv_dnn::zoo;

fn main() {
    let network = zoo::flownetc(192, 384);
    println!("DCO speedup / energy reduction for FlowNetC, per hardware configuration\n");
    println!(
        "{:>10}  {:>10}  {:>9}  {:>14}",
        "PE array", "buffer", "speedup", "energy saved"
    );
    for &buffer_kb in &[512u64, 1024, 1536, 2048, 3072] {
        for &dim in &[8usize, 16, 24, 32, 48] {
            let hw = HwConfig::asv_default()
                .with_pe_array(dim, dim)
                .with_buffer_bytes(buffer_kb * 1024);
            let accel = SystolicAccelerator::asv_default().with_hw(hw);
            let baseline = accel.run_network(&network, OptLevel::Baseline);
            let optimized = accel.run_network(&network, OptLevel::Ilar);
            println!(
                "{:>7}x{:<3} {:>8} KB  {:>8.2}x  {:>13.1}%",
                dim,
                dim,
                buffer_kb,
                optimized.speedup_over(&baseline),
                optimized.energy_reduction_vs(&baseline) * 100.0
            );
        }
    }

    let budget = AreaPowerBudget::asv_16nm();
    println!("\nASV hardware extension overhead (16 nm, 24x24 PEs):");
    println!(
        "  per-PE area overhead:   {:.1}%",
        budget.pe_area_overhead() * 100.0
    );
    println!(
        "  per-PE power overhead:  {:.1}%",
        budget.pe_power_overhead() * 100.0
    );
    println!(
        "  total area overhead:    {:.2}%",
        budget.total_area_overhead() * 100.0
    );
    println!(
        "  total power overhead:   {:.2}%",
        budget.total_power_overhead() * 100.0
    );
}
