//! Quickstart: run the full ASV system on a short synthetic stereo sequence.
//!
//! The example builds a small synthetic scene (the dataset substitute), runs
//! the ISM pipeline with a propagation window of 2, compares its accuracy
//! against running the key-frame estimator on every frame, and prints the
//! modelled per-frame speedup and energy saving of the ASV hardware variants.
//!
//! Run with: `cargo run --release --example quickstart`

use asv::system::{AsvConfig, AsvSystem};
use asv_scene::{SceneConfig, StereoSequence};

fn main() {
    // 1. Synthetic stereo video with exact ground-truth disparity.
    let scene = SceneConfig::scene_flow_like(96, 64).with_seed(42);
    let sequence = StereoSequence::generate(&scene, 6);
    println!(
        "generated {} stereo frames of {}x{}",
        sequence.len(),
        scene.width,
        scene.height
    );

    // 2. The ASV system: ISM pipeline + accelerator performance model.
    let system = AsvSystem::new(AsvConfig {
        propagation_window: 2,
        max_disparity: 32,
        frame_width: scene.width,
        frame_height: scene.height,
        network: "DispNet".to_owned(),
        metric: asv::CostMetric::Sad,
    })
    .expect("known network");

    // 3. Functional result: per-frame disparity maps.
    let result = system
        .process_sequence(&sequence)
        .expect("sequence processes");
    println!(
        "processed {} frames: {} key frames, {} non-key frames",
        result.frames.len(),
        result.key_frame_count(),
        result.non_key_frame_count()
    );

    // 4. Accuracy: ISM vs running the estimator on every frame (Fig. 9).
    let accuracy = system
        .evaluate_accuracy(&sequence)
        .expect("accuracy evaluates");
    println!(
        "three-pixel error: DNN-every-frame {:.2}%  ISM {:.2}%  (loss {:+.2} pp)",
        accuracy.dnn_error_rate * 100.0,
        accuracy.ism_error_rate * 100.0,
        accuracy.accuracy_loss * 100.0
    );

    // 5. Performance/energy: the four system variants of Fig. 10.
    println!("\nper-frame performance on the modelled accelerator:");
    for report in system.variant_reports() {
        println!(
            "  {:<9}  {:>8.2} fps   speedup {:>5.2}x   energy saved {:>5.1}%",
            report.variant.label(),
            report.per_frame.fps(),
            report.speedup,
            report.energy_reduction * 100.0
        );
    }
}
