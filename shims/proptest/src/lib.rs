//! Offline stand-in for `proptest`.
//!
//! Implements the API subset the workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]`, numeric-range
//! strategies, `collection::vec`, `prop_assert!`, `prop_assert_eq!` and
//! `prop_assume!`. Cases are drawn from the deterministic `rand` shim, so
//! every run exercises the same inputs; there is no shrinking — a failing
//! case panics with the drawn arguments in the message instead. Replace the
//! `shims/proptest` path dependency with the real crate once a registry is
//! reachable.

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a drawn case did not run to completion.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`.
    Reject,
}

/// A source of random values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32, f32, f64);

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_inclusive + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines randomized property tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(
                    0x70_72_6f_70 ^ stringify!($name).len() as u64,
                );
                let mut executed = 0u32;
                let mut attempts = 0u32;
                while executed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(64),
                        "property {} rejected too many cases (prop_assume too strict)",
                        stringify!($name),
                    );
                    $(let $arg = ($strat).generate(&mut rng);)+
                    // The closure gives `prop_assume!` an early-exit channel.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => executed += 1,
                        Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property. Cases are drawn from a fixed seed,
/// so a failure always reproduces; re-run with a debugger or println instead
/// of shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_assume_work(a in 0usize..10, b in 1u64..5) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert_eq!(b.min(10), b);
        }

        #[test]
        fn vec_strategy_respects_bounds(v in collection::vec(1usize..7, 1..=3)) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&x| (1..7).contains(&x)));
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
