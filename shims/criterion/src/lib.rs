//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros — as a small wall-clock
//! harness. It understands the standard harness flags cargo forwards
//! (`--bench`, `--test`, name filters) so `cargo bench -- --test` smoke-runs
//! every benchmark once without timing, exactly like the real crate. There is
//! no statistical analysis: each benchmark reports min/mean over
//! `sample_size` timed batches. Replace the `shims/criterion` path dependency
//! with the real crate once a registry is reachable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; parses the standard cargo-bench CLI flags.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags the libtest/criterion harness interface defines but
                // this shim can ignore.
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Self { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        if self.matches(id) {
            run_benchmark(id, 20, test_mode, f);
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_benchmark(&full, self.sample_size, self.criterion.test_mode, f);
        }
        self
    }

    /// Finishes the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Drives the closure under measurement.
pub struct Bencher {
    test_mode: bool,
    samples: Vec<Duration>,
    batch: u64,
}

impl Bencher {
    /// Times `routine`, calling it in batches; in `--test` mode it runs once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.batch as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, test_mode: bool, mut f: F) {
    if test_mode {
        let mut b = Bencher {
            test_mode: true,
            samples: Vec::new(),
            batch: 1,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }
    // Calibrate a batch size so one timed batch is at least ~2 ms.
    let mut calibrate = Bencher {
        test_mode: false,
        samples: Vec::with_capacity(1),
        batch: 1,
    };
    f(&mut calibrate);
    let once = calibrate
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_millis(2));
    let batch =
        (Duration::from_millis(2).as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u64;

    let mut b = Bencher {
        test_mode: false,
        samples: Vec::with_capacity(sample_size),
        batch,
    };
    f(&mut b);
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len().max(1) as u32;
    println!(
        "{id:<48} min {:>12} mean {:>12} ({} samples x {batch})",
        fmt(min),
        fmt(mean),
        b.samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = "Benchmark group generated by `criterion_group!`."]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1, "--test mode runs each benchmark exactly once");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nope".into()),
        };
        let mut ran = 0;
        c.bench_function("other", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
    }
}
