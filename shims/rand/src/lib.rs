//! Offline stand-in for `rand`, implementing the `rand 0.8` API subset this
//! workspace uses: `SmallRng::seed_from_u64`, `Rng::gen_range` over literal
//! ranges, and `distributions::{Distribution, Uniform}`.
//!
//! The generator reproduces `rand 0.8`'s `SmallRng` on 64-bit platforms
//! bit-for-bit — xoshiro256++ seeded through SplitMix64 — and the samplers
//! use the same recipes as `rand 0.8`'s `Uniform*::sample_single` (the
//! 23/52-bit `[1, 2)` exponent trick for floats, Lemire widening-multiply
//! rejection for integers), so seeds calibrated against the real crate draw
//! the same streams here. Replace the `shims/rand` path dependency with the
//! real crate once a registry is reachable.

use std::ops::Range;

/// Low-level source of randomness (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generator construction (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open, like rand 0.8).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// One uniform draw from `[0, 1)` via rand 0.8's `UniformFloat` recipe:
/// 23 random mantissa bits through the `[1, 2)` exponent trick.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    f32::from_bits(0x3F80_0000 | (rng.next_u32() >> 9)) - 1.0
}

/// As [`unit_f32`] with 52 mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    f64::from_bits(0x3FF0_0000_0000_0000 | (rng.next_u64() >> 12)) - 1.0
}

macro_rules! float_sample_range {
    ($($t:ty, $unit:ident);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                // rand 0.8's UniformFloat::sample_single: value0_1 * scale +
                // low, retrying with a nudged-down scale on the (vanishingly
                // rare) rounding edge where the result lands on `high`.
                // Degenerate (empty) ranges collapse to `start`, as the
                // multiply recipe did, so zero-sized inputs stay total.
                let mut scale = self.end - self.start;
                if scale <= 0.0 || scale.is_nan() {
                    let _ = $unit(rng);
                    return self.start;
                }
                loop {
                    let res = $unit(rng) * scale + self.start;
                    if res < self.end {
                        return res;
                    }
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    )*};
}

float_sample_range!(f32, unit_f32; f64, unit_f64);

macro_rules! int_sample_range {
    ($($t:ty, $u:ty, $draw:ident, $wide:ty);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // rand 0.8's UniformInt::sample_single: Lemire's widening
                // multiply with a rejection zone.
                let range = self.end.wrapping_sub(self.start) as $u;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$draw() as $u;
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> <$u>::BITS) as $u;
                    let lo = wide as $u;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

int_sample_range!(
    usize, u64, next_u64, u128;
    u64, u64, next_u64, u128;
    i64, u64, next_u64, u128;
    isize, u64, next_u64, u128;
    u32, u32, next_u32, u64;
    i32, u32, next_u32, u64;
);

/// Concrete generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Bit-exact reproduction of `rand 0.8`'s `SmallRng` on 64-bit targets:
    /// xoshiro256++ with the reference SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ reference update (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            // rand_xoshiro truncates (the ++ scrambler has strong low bits).
            self.next_u64() as u32
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 state fill, as rand_xoshiro does.
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            Self { s }
        }
    }

    /// Alias: the std generator is not cryptographic in this shim.
    pub type StdRng = SmallRng;
}

/// Distributions (stand-in for `rand::distributions`).
pub mod distributions {
    use super::{RngCore, SampleRange};

    /// A value-producing distribution (stand-in for
    /// `rand::distributions::Distribution`).
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<X> {
        low: X,
        high: X,
    }

    impl<X: Copy> Uniform<X> {
        /// Creates a uniform distribution over `[low, high)`.
        pub fn new(low: X, high: X) -> Self {
            Self { low, high }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // Same recipe as the float `gen_range` path (rand 0.8's
            // UniformFloat): 23 mantissa bits through the [1, 2) exponent
            // trick, then scale into [low, high).
            super::unit_f32(rng) * (self.high - self.low) + self.low
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // As above with 52 mantissa bits.
            super::unit_f64(rng) * (self.high - self.low) + self.low
        }
    }

    macro_rules! uniform_int_dist {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    (self.low..self.high).sample_single(rng)
                }
            }
        )*};
    }

    uniform_int_dist!(usize, u64, u32, i64, i32);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0.0f32..1.0), b.gen_range(0.0f32..1.0));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(5usize..9);
            assert!((5..9).contains(&u));
        }
    }

    #[test]
    fn uniform_distribution_matches_range_sampling() {
        let dist = Uniform::new(-1.0f32, 1.0);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
