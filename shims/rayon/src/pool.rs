//! Persistent worker pool with allocation-free task dispatch.
//!
//! A parallel region is a pair `(job, n)`: a `Fn(usize)` closure and the
//! number of indices to feed it. The region *publishes* the pair into one of
//! [`MAX_TASKS`] static slots, participates in executing indices itself, and
//! waits for stragglers before returning. Detached worker threads scan the
//! slots and help with whatever is active.
//!
//! Lifecycle of a slot (`state`): `FREE → PUBLISHING → ACTIVE → TEARDOWN →
//! FREE`. Workers guard their access with a reference count acquired *before*
//! re-validating `ACTIVE`; the publisher moves to `TEARDOWN` before waiting
//! for the count to drain, which closes the race where a worker observes a
//! stale `ACTIVE` on a slot that is being retired or republished.
//!
//! Nothing in the publish/claim/finish path allocates: slots are static,
//! synchronization is atomics plus a futex-backed `Mutex`/`Condvar` used only
//! to park and wake idle workers. A panic inside a job is caught on the
//! executing thread, stashed (the one allocation, on the panic path only) and
//! re-thrown on the publishing thread after the region completes.

// The workspace denies `unsafe_code`; the pool is the one shim component that
// cannot be expressed without it (sharing a non-'static job closure and
// slicing disjoint mutable chunks across threads), so the override is scoped
// to this module and every unsafe block carries its invariant.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Number of concurrently-published parallel regions the pool can track.
/// Deeper nesting degrades gracefully: regions that find no free slot run
/// inline on the calling thread.
const MAX_TASKS: usize = 8;

const FREE: usize = 0;
const PUBLISHING: usize = 1;
const ACTIVE: usize = 2;
const TEARDOWN: usize = 3;

/// Type-erased view of a published job closure.
type RawJob = *const (dyn Fn(usize) + Sync);

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

struct Slot {
    state: AtomicUsize,
    /// The published closure, valid only while the protocol says so: written
    /// under `PUBLISHING` by the sole publisher, read by threads that hold a
    /// `refs` guard and re-validated `ACTIVE`.
    job: UnsafeCell<Option<RawJob>>,
    /// Number of indices in the region.
    n: AtomicUsize,
    /// Next unclaimed index (may overshoot `n` by one per participant).
    next: AtomicUsize,
    /// Completed indices.
    done: AtomicUsize,
    /// Worker threads currently inspecting/executing this slot.
    refs: AtomicUsize,
    /// First panic payload raised by a job index, re-thrown by the publisher.
    panic: Mutex<Option<PanicPayload>>,
}

// SAFETY: `job` is the only non-Sync field; access is serialized by the slot
// state machine — a single publisher writes it during `PUBLISHING`, readers
// only dereference it between a `refs` increment and decrement bracketed by
// an `ACTIVE` re-validation, and the publisher never frees or rewrites the
// slot until `refs` drains to zero in `TEARDOWN`.
unsafe impl Sync for Slot {}

impl Slot {
    const fn new() -> Self {
        Self {
            state: AtomicUsize::new(FREE),
            job: UnsafeCell::new(None),
            n: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            refs: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }
}

struct Pool {
    slots: [Slot; MAX_TASKS],
    /// Bumped on every publish; idle workers wait for it to change.
    epoch: Mutex<u64>,
    wake: Condvar,
}

impl Pool {
    fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| Slot::new()),
            epoch: Mutex::new(0),
            wake: Condvar::new(),
        }
    }

    /// Publishes `(job, n)` into a free slot, returning its index, or `None`
    /// if every slot is busy (caller should run inline).
    fn try_publish(&self, job: RawJob, n: usize) -> Option<usize> {
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot
                .state
                .compare_exchange(FREE, PUBLISHING, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS makes this thread the sole owner of the
                // slot until it stores `ACTIVE`; no other thread reads `job`
                // while the state is `PUBLISHING`.
                unsafe { *slot.job.get() = Some(job) };
                slot.n.store(n, Ordering::Relaxed);
                slot.next.store(0, Ordering::Relaxed);
                slot.done.store(0, Ordering::Relaxed);
                slot.state.store(ACTIVE, Ordering::SeqCst);
                let mut epoch = self.epoch.lock().expect("pool epoch poisoned");
                *epoch += 1;
                drop(epoch);
                self.wake.notify_all();
                return Some(idx);
            }
        }
        None
    }

    /// Claims and executes indices of slot `idx` until none remain. Returns
    /// whether any index was executed.
    fn participate(&self, idx: usize, job: RawJob, n: usize) -> bool {
        let slot = &self.slots[idx];
        let mut did = false;
        loop {
            let i = slot.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return did;
            }
            did = true;
            // SAFETY: the caller guarantees `job` is the closure currently
            // published in this slot and keeps its referent alive until
            // `done == n` and `refs == 0` (enforced by `finish`).
            let run = AssertUnwindSafe(|| unsafe { (*job)(i) });
            if let Err(payload) = catch_unwind(run) {
                let mut guard = slot.panic.lock().expect("pool panic store poisoned");
                guard.get_or_insert(payload);
            }
            slot.done.fetch_add(1, Ordering::Release);
        }
    }

    /// Publisher-side completion: help execute, wait for stragglers, retire
    /// the slot and re-throw any captured panic.
    fn finish(&self, idx: usize, job: RawJob, n: usize) {
        self.participate(idx, job, n);
        let slot = &self.slots[idx];
        let mut spins = 0u32;
        while slot.done.load(Ordering::Acquire) < n {
            backoff(&mut spins);
        }
        // Close the door before draining helpers: a worker that saw a stale
        // `ACTIVE` must re-validate after its `refs` increment and back off.
        slot.state.store(TEARDOWN, Ordering::SeqCst);
        let mut spins = 0u32;
        while slot.refs.load(Ordering::SeqCst) != 0 {
            backoff(&mut spins);
        }
        let payload = slot.panic.lock().expect("pool panic store poisoned").take();
        slot.state.store(FREE, Ordering::SeqCst);
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    fn worker_loop(&'static self) {
        loop {
            let epoch = *self.epoch.lock().expect("pool epoch poisoned");
            let mut worked = false;
            for (idx, slot) in self.slots.iter().enumerate() {
                if slot.state.load(Ordering::SeqCst) != ACTIVE {
                    continue;
                }
                slot.refs.fetch_add(1, Ordering::SeqCst);
                // Re-validate under the refs guard: if the slot is still
                // ACTIVE now, the publisher is blocked from retiring it until
                // our refs drop, so the job pointer and counters are stable.
                if slot.state.load(Ordering::SeqCst) == ACTIVE {
                    // SAFETY: `job` was fully published before the `ACTIVE`
                    // store we just observed, and the refs guard keeps the
                    // slot (and the closure's referent) alive while we use it.
                    let job = unsafe { (*slot.job.get()).expect("active slot without job") };
                    let n = slot.n.load(Ordering::Relaxed);
                    worked |= self.participate(idx, job, n);
                }
                slot.refs.fetch_sub(1, Ordering::SeqCst);
            }
            if !worked {
                let mut guard = self.epoch.lock().expect("pool epoch poisoned");
                while *guard == epoch {
                    guard = self.wake.wait(guard).expect("pool epoch poisoned");
                }
            }
        }
    }
}

fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Number of threads a parallel region will be spread over (workers plus the
/// calling thread). Cached so the hot path never re-queries the OS.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool::new())); // lint: alloc-ok(one-time global pool init)
        for _ in 0..current_num_threads().saturating_sub(1) {
            std::thread::Builder::new()
                .name("rayon-shim-worker".into())
                .spawn(move || pool.worker_loop())
                .expect("failed to spawn rayon-shim worker");
        }
        pool
    })
}

/// Erases the job's borrow lifetime so it can sit in a static slot. Sound
/// because `finish`/`PublishGuard` never return while any thread can still
/// reach the pointer.
fn erase<'a>(job: &'a (dyn Fn(usize) + Sync)) -> RawJob {
    let raw: *const (dyn Fn(usize) + Sync + 'a) = job;
    // SAFETY: only the lifetime brand changes; the fat-pointer layout is
    // identical. The protocol (teardown before free, refs drain) guarantees
    // no dereference outlives `'a`.
    unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + 'a), RawJob>(raw) }
}

/// Region guard: ensures a published slot is fully retired even if the
/// publishing thread unwinds before calling `finish` (e.g. the first half of
/// a `join` panics while the second is still enqueued).
struct PublishGuard {
    idx: usize,
    job: RawJob,
    n: usize,
    armed: bool,
}

impl PublishGuard {
    fn finish(mut self) {
        self.armed = false;
        pool().finish(self.idx, self.job, self.n);
    }
}

impl Drop for PublishGuard {
    fn drop(&mut self) {
        if self.armed {
            // Already unwinding: drain the region but swallow its panic (the
            // in-flight one wins).
            let p = pool();
            p.participate(self.idx, self.job, self.n);
            let slot = &p.slots[self.idx];
            let mut spins = 0u32;
            while slot.done.load(Ordering::Acquire) < self.n {
                backoff(&mut spins);
            }
            slot.state.store(TEARDOWN, Ordering::SeqCst);
            let mut spins = 0u32;
            while slot.refs.load(Ordering::SeqCst) != 0 {
                backoff(&mut spins);
            }
            let _ = slot.panic.lock().expect("pool panic store poisoned").take();
            slot.state.store(FREE, Ordering::SeqCst);
        }
    }
}

/// Runs `job(i)` for every `i in 0..n`, spread over the pool. The calling
/// thread always participates; with a single hardware thread, an empty or
/// singleton range, or all task slots busy, everything runs inline.
pub fn run(n: usize, job: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    if n == 1 || current_num_threads() <= 1 {
        for i in 0..n {
            job(i);
        }
        return;
    }
    let raw = erase(job);
    match pool().try_publish(raw, n) {
        Some(idx) => PublishGuard {
            idx,
            job: raw,
            n,
            armed: true,
        }
        .finish(),
        None => {
            for i in 0..n {
                job(i);
            }
        }
    }
}

/// `rayon::join`: runs `a` on the calling thread while `b` is offered to the
/// pool; whoever gets there first runs `b`, and the caller claims it back if
/// no worker picked it up.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let b_cell: Mutex<Option<B>> = Mutex::new(Some(b));
    let rb_cell: Mutex<Option<RB>> = Mutex::new(None);
    let task = |_i: usize| {
        let f = b_cell.lock().expect("join task poisoned").take();
        if let Some(f) = f {
            let rb = f();
            *rb_cell.lock().expect("join result poisoned") = Some(rb);
        }
    };
    let raw = erase(&task);
    match pool().try_publish(raw, 1) {
        Some(idx) => {
            let guard = PublishGuard {
                idx,
                job: raw,
                n: 1,
                armed: true,
            };
            let ra = a();
            guard.finish();
            let rb = rb_cell
                .into_inner()
                .expect("join result poisoned")
                .expect("join second closure did not run");
            (ra, rb)
        }
        None => {
            let ra = a();
            let f = b_cell
                .into_inner()
                .expect("join task poisoned")
                .expect("join second closure consumed without result");
            (ra, f())
        }
    }
}

/// Collects `f(i)` for `i in 0..n` into a `Vec`, preserving index order.
/// Allocates the result (collect is not on the zero-alloc streaming path).
pub fn collect_vec<T: Send>(n: usize, f: &(dyn Fn(usize) -> T + Sync)) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || current_num_threads() <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` contents may legally be uninitialized; the region
    // below writes every index exactly once before the transmute.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    run(n, &|i| {
        let slot = base;
        // SAFETY: `i < n` is guaranteed by `run`, each index is claimed by
        // exactly one thread, and the `Vec` outlives the region because
        // `run` does not return until every index completed.
        unsafe { slot.0.add(i).write(MaybeUninit::new(f(i))) };
    });
    // If a job index panicked, `run` re-threw above and `out` is dropped as
    // `Vec<MaybeUninit<T>>`, leaking elements instead of double-dropping.
    let mut out = ManuallyDrop::new(out);
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    // SAFETY: all `len` elements were initialized exactly once by the region
    // above, and `MaybeUninit<T>` has the same layout as `T`.
    unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
}

/// A raw pointer that asserts cross-thread safety; used to smuggle disjoint
/// write targets into `Fn` jobs.
struct SendPtr<T>(*mut T);

// Manual impls: the derive would add an unwanted `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: every use of `SendPtr` writes through disjoint, uniquely-claimed
// offsets of a live allocation owned by the publishing stack frame, which
// outlives the parallel region.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — shared access never aliases a written element.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Lazy chunk view over a mutable slice: chunk `i` is computed on demand so
/// distributing chunks allocates nothing.
pub struct SliceParts<T> {
    base: SendPtr<T>,
    len: usize,
    chunk: usize,
}

impl<T: Send> SliceParts<T> {
    /// Captures the slice; the returned view must not outlive it (enforced
    /// by the borrow the caller holds across the parallel region).
    pub fn new(slice: &mut [T], chunk: usize) -> Self {
        Self {
            base: SendPtr(slice.as_mut_ptr()),
            len: slice.len(),
            chunk,
        }
    }

    /// The `i`-th chunk as a mutable sub-slice.
    ///
    /// Disjointness: parallel regions claim each index exactly once, and
    /// distinct indices map to non-overlapping `[i*chunk, min((i+1)*chunk,
    /// len))` ranges.
    #[allow(clippy::mut_from_ref)]
    pub fn chunk(&self, i: usize) -> &mut [T] {
        let start = (i * self.chunk).min(self.len);
        let end = (start + self.chunk).min(self.len);
        // SAFETY: `start..end` is in bounds of the captured slice, each index
        // `i` is handed to exactly one executing thread, so no two live
        // sub-slices overlap; the underlying slice outlives the region.
        unsafe { std::slice::from_raw_parts_mut(self.base.0.add(start), end - start) }
    }
}

// SAFETY: see `SendPtr` — the view only ever materializes disjoint chunks.
unsafe impl<T: Send> Sync for SliceParts<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn slot_exhaustion_falls_back_inline() {
        // Recursion deeper than MAX_TASKS: inner regions run inline instead
        // of deadlocking.
        fn recurse(depth: usize) -> usize {
            if depth == 0 {
                return 1;
            }
            let (a, b) = join(|| recurse(depth - 1), || recurse(depth - 1));
            a + b
        }
        assert_eq!(recurse(MAX_TASKS + 2), 1 << (MAX_TASKS + 2));
    }

    #[test]
    fn collect_vec_is_ordered() {
        let v = collect_vec(1023, &|i| i * 3);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }
}
