//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this crate re-implements
//! the small parallel-iterator surface the workspace's kernels use on top of
//! `std::thread::scope`: contiguous index chunks are distributed over
//! `available_parallelism()` worker threads and results are stitched back in
//! order. Unlike a mock, this delivers real multi-core speedups; unlike real
//! rayon there is no work-stealing pool, so it is only suitable for the
//! coarse-grained, evenly-sized row/plane chunks the kernels produce (which
//! is exactly how they are written). On a single-core machine everything runs
//! inline with zero thread overhead. Replace the `shims/rayon` path
//! dependency with the real crate once a registry is reachable.

use std::ops::Range;

/// Number of worker threads the shim will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon-shim join worker panicked"))
        })
    }
}

/// Maps `f` over `0..n`, splitting the index range into one contiguous chunk
/// per worker; results are returned in index order. The core primitive every
/// adapter below is built on.
fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Vec<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    });
    let mut flat = Vec::with_capacity(n);
    for part in &mut out {
        flat.append(part);
    }
    flat
}

/// Parallel iterator over `0..n` index ranges.
pub struct ParRange {
    range: Range<usize>,
}

/// Parallel map adapter over an index range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl ParRange {
    /// Maps each index through `f`.
    pub fn map<T, F: Fn(usize) -> T + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` for every index (in parallel across chunks).
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let lo = self.range.start;
        par_map_indexed(self.range.len(), |i| f(lo + i));
    }
}

impl<T: Send, F: Fn(usize) -> T + Sync> ParRangeMap<F> {
    /// Collects the mapped values in index order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let lo = self.range.start;
        let f = self.f;
        par_map_indexed(self.range.len(), |i| f(lo + i))
            .into_iter()
            .collect()
    }

    /// Runs the map for its side effects, discarding results.
    pub fn for_each<G: Fn(T) + Sync>(self, g: G) {
        let lo = self.range.start;
        let f = self.f;
        par_map_indexed(self.range.len(), |i| g(f(lo + i)));
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        let lo = self.range.start;
        let f = self.f;
        par_map_indexed(self.range.len(), |i| f(lo + i))
            .into_iter()
            .sum()
    }
}

/// Conversion into a parallel iterator (stand-in for
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The parallel-iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over an immutable slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps each element through `f`, preserving order.
    pub fn map<U, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParSliceMap {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every element.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let slice = self.slice;
        par_map_indexed(slice.len(), |i| f(&slice[i]));
    }
}

/// Parallel map adapter over an immutable slice.
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParSliceMap<'a, T, F> {
    /// Collects the mapped values in order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let slice = self.slice;
        let f = self.f;
        par_map_indexed(slice.len(), |i| f(&slice[i]))
            .into_iter()
            .collect()
    }
}

/// `par_iter` on slices (stand-in for `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item;
    /// The parallel-iterator type.
    type Iter;
    /// Borrowing parallel iterator over `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over mutable, non-overlapping chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attaches the chunk index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        run_chunks(self.chunks, |_, c| f(c));
    }
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        run_chunks(self.chunks, |i, c| f((i, c)));
    }
}

/// Distributes pre-split mutable chunks over the workers. Chunks are handed
/// out round-robin so a contiguous prefix/suffix imbalance spreads evenly.
fn run_chunks<T: Send, F: Fn(usize, &mut [T]) + Sync>(chunks: Vec<&mut [T]>, f: F) {
    let workers = current_num_threads().min(chunks.len().max(1));
    if workers <= 1 || chunks.len() <= 1 {
        for (i, c) in chunks.into_iter().enumerate() {
            f(i, c);
        }
        return;
    }
    let mut lanes: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, c) in chunks.into_iter().enumerate() {
        lanes[i % workers].push((i, c));
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                let f = &f;
                s.spawn(move || {
                    for (i, c) in lane {
                        f(i, c);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("rayon-shim worker panicked");
        }
    });
}

/// `par_chunks_mut` on slices (stand-in for `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable chunks of `chunk_size` elements.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The usual glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn chunks_mut_writes_every_chunk() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn slice_par_iter_maps() {
        let data = vec![1.0f32; 64];
        let doubled: Vec<f32> = data.par_iter().map(|&v| v * 2.0).collect();
        assert!(doubled.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_owned() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn range_sum_matches_sequential() {
        let s: usize = (0..100usize).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 4950);
    }
}
