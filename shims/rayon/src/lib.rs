//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this crate re-implements
//! the small parallel-iterator surface the workspace's kernels use. Earlier
//! revisions spawned scoped `std` threads per call, which made every parallel
//! region allocate (thread stacks, chunk vectors) and broke the workspace's
//! zero-allocation steady-state guarantee in the `parallel` build. This
//! revision keeps a **persistent worker pool**:
//!
//! * `available_parallelism() - 1` detached workers are spawned once, on the
//!   first parallel call, and then live for the process lifetime.
//! * A parallel region publishes a task — `(closure, n_indices)` — into one
//!   of a fixed set of static task slots. Workers and the calling thread
//!   *claim* indices with an atomic counter, so the caller always
//!   participates and nested parallelism (e.g. `join` inside `join` inside a
//!   `par_chunks_mut` body) can never deadlock: a region that finds no free
//!   slot simply runs inline.
//! * Publishing, claiming and completion are all lock-free atomics plus one
//!   futex-backed `Mutex`/`Condvar` pair to park idle workers — **no heap
//!   allocation per parallel region**, which is what lets the allocation
//!   regression test assert exactly zero steady-state allocations with the
//!   `parallel` feature enabled.
//!
//! `par_chunks_mut` hands out disjoint sub-slices computed from a claimed
//! chunk index (no eager `Vec<&mut [T]>`), and gains a rayon-compatible
//! [`ParChunksMut::zip`] so kernels can pair a data chunk with a scratch
//! chunk. Unlike real rayon there is no work stealing; the claiming counter
//! provides the same load-balancing for the coarse row/plane chunks the
//! kernels produce. Replace the `shims/rayon` path dependency with the real
//! crate once a registry is reachable.

use std::ops::Range;

mod pool;

pub use pool::current_num_threads;

/// Runs two closures, potentially in parallel, returning both results.
///
/// The second closure is published to the worker pool while the caller runs
/// the first; if no worker picks it up by the time the first returns, the
/// caller runs it inline (so `join` never blocks on an idle pool).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

/// Parallel iterator over `0..n` index ranges.
pub struct ParRange {
    range: Range<usize>,
}

/// Parallel map adapter over an index range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl ParRange {
    /// Maps each index through `f`.
    pub fn map<T, F: Fn(usize) -> T + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` for every index (in parallel across the pool).
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let lo = self.range.start;
        pool::run(self.range.len(), &|i| f(lo + i));
    }
}

impl<T: Send, F: Fn(usize) -> T + Sync> ParRangeMap<F> {
    /// Collects the mapped values in index order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let lo = self.range.start;
        let f = self.f;
        pool::collect_vec(self.range.len(), &|i| f(lo + i))
            .into_iter()
            .collect()
    }

    /// Runs the map for its side effects, discarding results.
    pub fn for_each<G: Fn(T) + Sync>(self, g: G) {
        let lo = self.range.start;
        let f = self.f;
        pool::run(self.range.len(), &|i| g(f(lo + i)));
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        let lo = self.range.start;
        let f = self.f;
        pool::collect_vec(self.range.len(), &|i| f(lo + i))
            .into_iter()
            .sum()
    }
}

/// Conversion into a parallel iterator (stand-in for
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The parallel-iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over an immutable slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps each element through `f`, preserving order.
    pub fn map<U, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParSliceMap {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every element.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let slice = self.slice;
        pool::run(slice.len(), &|i| f(&slice[i]));
    }
}

/// Parallel map adapter over an immutable slice.
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParSliceMap<'a, T, F> {
    /// Collects the mapped values in order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let slice = self.slice;
        let f = self.f;
        pool::collect_vec(slice.len(), &|i| f(&slice[i]))
            .into_iter()
            .collect()
    }
}

/// `par_iter` on slices (stand-in for `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item;
    /// The parallel-iterator type.
    type Iter;
    /// Borrowing parallel iterator over `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over mutable, non-overlapping chunks of a slice.
///
/// Lazy: the chunk boundaries are computed from the claimed chunk index at
/// execution time, so building and consuming the iterator allocates nothing.
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T: Send> {
    inner: ParChunksMut<'a, T>,
}

/// Two [`ParChunksMut`] iterators advanced in lock step (stand-in for
/// `IndexedParallelIterator::zip`); yields paired chunks.
pub struct ParZipChunksMut<'a, 'b, T: Send, U: Send> {
    a: ParChunksMut<'a, T>,
    b: ParChunksMut<'b, U>,
}

/// Enumerated variant of [`ParZipChunksMut`].
pub struct ParZipChunksMutEnumerate<'a, 'b, T: Send, U: Send> {
    inner: ParZipChunksMut<'a, 'b, T, U>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    fn num_chunks(&self) -> usize {
        if self.slice.is_empty() {
            0
        } else {
            self.slice.len().div_ceil(self.chunk)
        }
    }

    /// Attaches the chunk index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Pairs this iterator's chunks with another's, like rayon's `zip`; the
    /// shorter side determines the number of pairs.
    pub fn zip<'b, U: Send>(self, other: ParChunksMut<'b, U>) -> ParZipChunksMut<'a, 'b, T, U> {
        ParZipChunksMut { a: self, b: other }
    }

    /// Runs `f` on every chunk.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let n = self.num_chunks();
        let view = pool::SliceParts::new(self.slice, self.chunk);
        pool::run(n, &|i| f(view.chunk(i)));
    }
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let n = self.inner.num_chunks();
        let view = pool::SliceParts::new(self.inner.slice, self.inner.chunk);
        pool::run(n, &|i| f((i, view.chunk(i))));
    }
}

impl<'a, 'b, T: Send, U: Send> ParZipChunksMut<'a, 'b, T, U> {
    /// Attaches the pair index.
    pub fn enumerate(self) -> ParZipChunksMutEnumerate<'a, 'b, T, U> {
        ParZipChunksMutEnumerate { inner: self }
    }

    /// Runs `f` on every `(chunk_a, chunk_b)` pair.
    pub fn for_each<F: Fn((&mut [T], &mut [U])) + Sync>(self, f: F) {
        let n = self.a.num_chunks().min(self.b.num_chunks());
        let va = pool::SliceParts::new(self.a.slice, self.a.chunk);
        let vb = pool::SliceParts::new(self.b.slice, self.b.chunk);
        pool::run(n, &|i| f((va.chunk(i), vb.chunk(i))));
    }
}

impl<'a, 'b, T: Send, U: Send> ParZipChunksMutEnumerate<'a, 'b, T, U> {
    /// Runs `f` on every `(index, (chunk_a, chunk_b))` triple.
    pub fn for_each<F: Fn((usize, (&mut [T], &mut [U]))) + Sync>(self, f: F) {
        let n = self.inner.a.num_chunks().min(self.inner.b.num_chunks());
        let va = pool::SliceParts::new(self.inner.a.slice, self.inner.a.chunk);
        let vb = pool::SliceParts::new(self.inner.b.slice, self.inner.b.chunk);
        pool::run(n, &|i| f((i, (va.chunk(i), vb.chunk(i)))));
    }
}

/// `par_chunks_mut` on slices (stand-in for `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable chunks of `chunk_size` elements.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// The usual glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn chunks_mut_writes_every_chunk() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn zipped_chunks_pair_in_order() {
        let mut a = [0usize; 64];
        let mut b = [0usize; 16];
        a.par_chunks_mut(8)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for v in ca.iter_mut() {
                    *v = i + 1;
                }
                for v in cb.iter_mut() {
                    *v = (i + 1) * 100;
                }
            });
        assert_eq!(a[0], 1);
        assert_eq!(a[63], 8);
        assert_eq!(b[0], 100);
        assert_eq!(b[15], 800);
    }

    #[test]
    fn slice_par_iter_maps() {
        let data = vec![1.0f32; 64];
        let doubled: Vec<f32> = data.par_iter().map(|&v| v * 2.0).collect();
        assert!(doubled.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_owned() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_joins_and_par_loops_complete() {
        // Exercises nested publication: joins inside joins inside a parallel
        // for_each, deeper than the number of task slots. Must not deadlock.
        let total: usize = (0..32usize)
            .into_par_iter()
            .map(|i| {
                let ((a, b), (c, d)) = super::join(
                    || super::join(|| i, || i * 2),
                    || super::join(|| i * 3, || i * 4),
                );
                a + b + c + d
            })
            .sum();
        assert_eq!(total, (0..32).map(|i| i * 10).sum::<usize>());
    }

    #[test]
    fn range_sum_matches_sequential() {
        let s: usize = (0..100usize).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 4950);
    }

    #[test]
    fn for_each_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                assert!(i != 37, "deliberate failure");
            });
        });
        assert!(result.is_err());
        // The pool must stay usable after a panicking region.
        let v: Vec<usize> = (0..16).into_par_iter().map(|i| i).collect();
        assert_eq!(v.len(), 16);
    }

    #[test]
    fn steady_state_regions_reuse_the_pool() {
        // Warm up, then hammer the pool from repeated regions; this is the
        // shape the zero-allocation streaming test relies on.
        let mut data = vec![0u32; 4096];
        for round in 0..50u32 {
            data.par_chunks_mut(256).for_each(|chunk| {
                for v in chunk.iter_mut() {
                    *v = round;
                }
            });
            assert!(data.iter().all(|&v| v == round));
        }
    }
}
