//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (trait + derive, exactly
//! like the real crate layout) so the workspace compiles without network
//! access. The traits are blanket-implemented markers: the codebase only
//! derives them for forward compatibility and never serializes, so no
//! data-format machinery is needed. Replace the `shims/serde*` path
//! dependencies with the real crates once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de> + ?Sized> DeserializeOwned for T {}
