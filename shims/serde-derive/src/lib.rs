//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real `serde_derive`
//! cannot be fetched. The workspace only uses `#[derive(Serialize,
//! Deserialize)]` as a forward-compatibility marker (nothing serializes yet),
//! and the sibling `serde` shim provides blanket trait impls, so these derives
//! can simply expand to nothing. Swap the `shims/serde*` path dependencies for
//! the real crates once a registry is reachable.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
