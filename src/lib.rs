//! Workspace facade for the ASV reproduction.
//!
//! This crate re-exports the public API of every workspace member so the
//! examples and integration tests can address the whole system through a
//! single dependency.  Library users should normally depend on the individual
//! crates (`asv`, `asv-stereo`, `asv-dataflow`, ...) directly.
//!
//! The system entry points are reachable both through the `asv` member crate
//! and through this facade's re-exports; both paths below name the same
//! items:
//!
//! ```
//! use asv::system::{AsvConfig, AsvSystem};
//! use asv_system::asv::AsvConfig as FacadeConfig;
//!
//! let direct = AsvConfig::small();
//! let via_facade = FacadeConfig::small();
//! assert_eq!(direct, via_facade);
//! let _system = AsvSystem::new(direct).expect("known network");
//! ```
//!
//! Errors from any layer unify into [`AsvError`]:
//!
//! ```
//! use asv_system::AsvError;
//!
//! fn demo() -> Result<(), AsvError> {
//!     let bad = asv_system::tensor::Tensor4::from_vec(
//!         asv_system::tensor::Shape4::new(1, 1, 2, 2),
//!         vec![0.0; 3],
//!     );
//!     match bad {
//!         Err(e) => Err(e.into()),
//!         Ok(_) => Ok(()),
//!     }
//! }
//! assert!(matches!(demo(), Err(AsvError::Tensor(_))));
//! ```

pub use asv;
pub use asv_accel as accel;
pub use asv_dataflow as dataflow;
pub use asv_deconv as deconv;
pub use asv_dnn as dnn;
pub use asv_flow as flow;
pub use asv_image as image;
pub use asv_mem as mem;
pub use asv_runtime as runtime;
pub use asv_scene as scene;
pub use asv_stereo as stereo;
pub use asv_tensor as tensor;

pub use asv::error::AsvError;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_wired() {
        // Touch one item from each re-exported crate so a broken re-export
        // fails this crate's build/tests immediately.
        let _ = crate::stereo::triangulation::CameraRig::bumblebee2();
        let _ = crate::dataflow::HwConfig::asv_default();
        let _ = crate::accel::EnergyModel::asv_16nm();
        let _ = crate::dnn::zoo::DEFAULT_HEIGHT;
        let _ = crate::image::Image::zeros(1, 1);
        let _ = crate::tensor::Shape4::new(1, 1, 1, 1);
        let _ = crate::scene::SceneConfig::scene_flow_like(8, 8);
        let _ = crate::flow::FlowField::zeros(1, 1);
        let config = crate::asv::AsvConfig::small();
        assert_eq!(config.propagation_window, 2);
    }
}
