//! Workspace facade for the ASV reproduction.
//!
//! This crate re-exports the public API of every workspace member so the
//! examples and integration tests can address the whole system through a
//! single dependency.  Library users should normally depend on the individual
//! crates (`asv`, `asv-stereo`, `asv-dataflow`, ...) directly.

pub use asv;
pub use asv_accel as accel;
pub use asv_dataflow as dataflow;
pub use asv_deconv as deconv;
pub use asv_dnn as dnn;
pub use asv_flow as flow;
pub use asv_image as image;
pub use asv_scene as scene;
pub use asv_stereo as stereo;
pub use asv_tensor as tensor;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_wired() {
        // Touch one item from each re-exported crate so a broken re-export
        // fails this crate's build/tests immediately.
        let _ = crate::stereo::triangulation::CameraRig::bumblebee2();
        let _ = crate::dataflow::HwConfig::asv_default();
        let _ = crate::accel::EnergyModel::asv_16nm();
        let _ = crate::dnn::zoo::DEFAULT_HEIGHT;
        let _ = crate::image::Image::zeros(1, 1);
        let _ = crate::tensor::Shape4::new(1, 1, 1, 1);
        let _ = crate::scene::SceneConfig::scene_flow_like(8, 8);
        let _ = crate::flow::FlowField::zeros(1, 1);
        let config = crate::asv::AsvConfig::small();
        assert_eq!(config.propagation_window, 2);
    }
}
